// Package task defines the task record and dependency-graph bookkeeping used
// by the DataFlowKernel. A task is a node in the dynamic DAG (§3.4); edges
// are the futures exchanged between tasks. The DFK owns state transitions;
// this package provides the data structures and their invariants.
package task

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/future"
	"repro/internal/serialize"
)

// State is the lifecycle of a task inside the DataFlowKernel, mirroring the
// states Parsl's monitoring records (§4.6).
type State int32

const (
	// Unsched: created but dependencies not yet examined.
	Unsched State = iota
	// Pending: waiting on unresolved dependencies.
	Pending
	// DataStaging: waiting on injected data-transfer tasks (§4.5).
	DataStaging
	// Launched: handed to an executor, result future outstanding.
	Launched
	// Running: executor reported the task as started (best effort).
	Running
	// Retrying: failed and resubmitted; Attempts has been incremented.
	Retrying
	// Done: completed successfully; result set on the AppFuture.
	Done
	// Failed: exhausted retries; exception set on the AppFuture.
	Failed
	// Memoized: completed from the memo table / checkpoint without launch.
	Memoized
)

var stateNames = map[State]string{
	Unsched:     "unsched",
	Pending:     "pending",
	DataStaging: "data_staging",
	Launched:    "launched",
	Running:     "running",
	Retrying:    "retrying",
	Done:        "done",
	Failed:      "failed",
	Memoized:    "memoized",
}

// String implements fmt.Stringer.
func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Memoized }

// validNext encodes the permitted state machine. The DFK enforces it via
// Record.SetState; invalid transitions indicate engine bugs and are surfaced
// as errors rather than silently accepted.
var validNext = map[State][]State{
	Unsched:     {Pending, DataStaging, Launched, Memoized, Failed},
	Pending:     {Launched, DataStaging, Memoized, Failed},
	DataStaging: {Pending, Launched, Failed},
	Launched:    {Running, Done, Failed, Retrying},
	Running:     {Done, Failed, Retrying},
	Retrying:    {Launched, Failed},
}

// Record is a node in the task graph. Fields under mu are mutated by the DFK
// as execution progresses; immutable identity fields are set at creation.
type Record struct {
	ID       int64
	AppName  string
	FuncHash string // hash of the app "body" used by memoization keys
	Args     []any  // raw args as submitted (may contain futures)
	Kwargs   map[string]any

	// Future is the AppFuture returned to the program at submission time.
	Future *future.Future

	// Hints restrict which executors may run the task; empty means any.
	Hints []string

	mu          sync.Mutex
	state       State
	attempts    int
	maxRetries  int
	executor    string // label of the executor the task was launched on
	memoKey     string
	pendingDeps int

	// Per-call submission options (App.Submit's CallOptions), fixed before
	// the task becomes ready and read by the dispatch pipeline.
	priority    int
	timeout     time.Duration // per-call override of Config.TaskTimeout
	deadline    time.Time     // absolute per-call deadline (zero = none)
	memoKeyOver string        // per-call memo key override ("" = computed)
	tenant      string        // fair-queuing tenant id ("" = default tenant)
	weight      int           // tenant DRR weight (0 = leave current, min 1)

	// Current execution attempt: its outcome future and wire id, recorded so
	// a cancellation arriving from outside the dispatch pipeline can conclude
	// the attempt (dropping it from its lane) and name it to the executor.
	attemptFut  *future.Future
	attemptWire int64

	// payload is the encode-once serialization of the resolved arguments,
	// recorded when the task first becomes ready. Every later consumer —
	// retries, the memo hash, executor wire frames, deep copies — reuses
	// these bytes instead of re-encoding.
	payload *serialize.Payload

	// Timestamps for monitoring and the elasticity utilization metric.
	SubmitTime time.Time
	launchTime time.Time
	startTime  time.Time
	endTime    time.Time

	// transitions points into transBuf until the task records more than
	// len(transBuf) state changes (retry-heavy tasks), then spills to a heap
	// slice which recycling keeps for the next occupant. The common
	// pending→launched→done life never allocates.
	transitions []Transition
	transBuf    [4]Transition

	// Recycling bookkeeping (all under mu). gen is the generation stamp:
	// asynchronous consumers (dependency callbacks, context watchers, the
	// dispatch pipeline) capture it at registration and revalidate with
	// Enter before touching the record, so a pooled record reused for a new
	// task is never corrupted by a straggler holding a stale pointer. holds
	// counts consumers currently inside an Enter/Exit window; retired marks
	// that the graph has pruned the record — the last Exit (or Retire itself
	// when nobody is inside) resets the record and returns it to the pool.
	gen     uint32
	holds   int32
	retired bool

	// walKey is the task's durable key in the write-ahead log (0 = not
	// logged). Recovery dedups by it: a replayed task keeps its pre-crash
	// key, so its post-crash transitions append to the same durable history.
	walKey int64

	// admitted records that this task holds an admission-controller slot;
	// the DFK's retire path consumes it (TakeAdmitted) to release the slot
	// exactly once without a per-task closure.
	admitted bool

	// cancelStop detaches the context watcher (context.AfterFunc's stop);
	// stored here so retirement can stop it without allocating a callback.
	cancelStop func() bool
}

// Transition records one state change for monitoring.
type Transition struct {
	From State
	To   State
	At   time.Time
}

// recordPool recycles terminal Records (and, via resetLocked, their
// transition slices). The AppFuture is deliberately NOT pooled: it is the
// user-visible handle, may outlive the record arbitrarily, and keeps the
// task's result reachable after the record has been reused.
var recordPool = sync.Pool{New: func() any { return new(Record) }}

// NewRecord creates a task record in the Unsched state with its AppFuture.
// Records come from a pool; initialization happens under the record's mutex
// so a straggler probing a stale handle (Enter on an old generation) never
// races the reuse.
func NewRecord(id int64, appName string, args []any, kwargs map[string]any) *Record {
	r := recordPool.Get().(*Record)
	r.mu.Lock()
	r.ID = id
	r.AppName = appName
	r.Args = args
	r.Kwargs = kwargs
	r.Future = future.NewForTask(id)
	r.state = Unsched
	r.SubmitTime = time.Now()
	r.mu.Unlock()
	return r
}

// Gen returns the record's current generation stamp. Asynchronous consumers
// capture it while the record is known-live and pass it back to Enter.
func (r *Record) Gen() uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// Enter validates a generation stamp and, on success, takes a hold that
// keeps the record from being recycled until the matching Exit. It returns
// false when the record has moved on to a new generation — the caller's
// handle is stale and the record must not be touched. A record that is
// retired but not yet recycled still admits holds: its fields remain valid
// until the last hold drops.
func (r *Record) Enter(gen uint32) bool {
	r.mu.Lock()
	if r.gen != gen {
		r.mu.Unlock()
		return false
	}
	r.holds++
	r.mu.Unlock()
	return true
}

// Exit drops a hold taken by Enter, recycling the record if it was retired
// and this was the last hold. Exit without a matching Enter is an engine bug
// (a missed generation check) and panics.
func (r *Record) Exit() {
	r.mu.Lock()
	if r.holds <= 0 {
		id := r.ID
		r.mu.Unlock()
		panic(fmt.Sprintf("task %d: Exit without matching Enter (use-after-recycle guard)", id))
	}
	r.holds--
	if r.retired && r.holds == 0 {
		r.recycleLocked()
		return
	}
	r.mu.Unlock()
}

// Retire marks the record as pruned from the graph. If no consumer holds it,
// the record is reset and returned to the pool immediately; otherwise the
// last Exit recycles it. Called exactly once per task, by Graph.Retire.
func (r *Record) Retire() {
	r.mu.Lock()
	if r.retired {
		id := r.ID
		r.mu.Unlock()
		panic(fmt.Sprintf("task %d: double retire", id))
	}
	r.retired = true
	if r.holds == 0 {
		r.recycleLocked()
		return
	}
	r.mu.Unlock()
}

// recycleLocked resets the record for reuse and returns it to the pool.
// Called with r.mu held; unlocks it. The generation bump is what invalidates
// every outstanding handle: a later Enter with the old stamp fails.
func (r *Record) recycleLocked() {
	r.gen++
	r.ID = 0
	r.AppName = ""
	r.FuncHash = ""
	r.Args = nil
	r.Kwargs = nil
	r.Future = nil
	r.Hints = nil
	r.state = Unsched
	r.attempts = 0
	r.maxRetries = 0
	r.executor = ""
	r.memoKey = ""
	r.pendingDeps = 0
	r.priority = 0
	r.timeout = 0
	r.deadline = time.Time{}
	r.memoKeyOver = ""
	r.tenant = ""
	r.weight = 0
	r.attemptFut = nil
	r.attemptWire = 0
	r.payload = nil
	r.SubmitTime = time.Time{}
	r.launchTime = time.Time{}
	r.startTime = time.Time{}
	r.endTime = time.Time{}
	r.transitions = r.transitions[:0]
	r.walKey = 0
	r.retired = false
	r.admitted = false
	r.cancelStop = nil
	r.mu.Unlock()
	recordPool.Put(r)
}

// SetAdmitted marks that the task holds an admission-controller slot.
func (r *Record) SetAdmitted() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.admitted = true
}

// TakeAdmitted consumes the admission mark, reporting whether a slot was
// held. At most one caller observes true.
func (r *Record) TakeAdmitted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	was := r.admitted
	r.admitted = false
	return was
}

// SetCancelStop stores the context watcher's detach function.
func (r *Record) SetCancelStop(stop func() bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cancelStop = stop
}

// TakeCancelStop consumes the watcher detach function (nil if none or
// already taken).
func (r *Record) TakeCancelStop() func() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	stop := r.cancelStop
	r.cancelStop = nil
	return stop
}

// State returns the current state.
func (r *Record) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// SetState transitions the task, validating against the state machine. It
// returns an error on an illegal transition. Terminal states are sticky.
func (r *Record) SetState(s State) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == s {
		return nil
	}
	if r.state.Terminal() {
		return fmt.Errorf("task %d: transition %v -> %v from terminal state", r.ID, r.state, s)
	}
	ok := false
	for _, n := range validNext[r.state] {
		if n == s {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("task %d: illegal transition %v -> %v", r.ID, r.state, s)
	}
	now := time.Now()
	if r.transitions == nil {
		r.transitions = r.transBuf[:0]
	}
	r.transitions = append(r.transitions, Transition{From: r.state, To: s, At: now})
	switch s {
	case Launched:
		r.launchTime = now
	case Running:
		r.startTime = now
	case Done, Failed, Memoized:
		r.endTime = now
	}
	r.state = s
	return nil
}

// Transitions returns a copy of the recorded state changes.
func (r *Record) Transitions() []Transition {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Transition, len(r.transitions))
	copy(out, r.transitions)
	return out
}

// Attempts returns how many times the task has been (re)launched.
func (r *Record) Attempts() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attempts
}

// IncAttempts bumps the attempt counter and returns the new value.
func (r *Record) IncAttempts() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.attempts++
	return r.attempts
}

// SetAttempts seeds the attempt counter — recovery uses it so launches
// consumed before a crash keep counting against the budget: a task replayed
// with n logged launches resumes as if n attempts already failed, keeping
// total launches across process lifetimes within retries+1.
func (r *Record) SetAttempts(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.attempts = n
}

// SetWALKey records the task's durable write-ahead-log key.
func (r *Record) SetWALKey(k int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.walKey = k
}

// WALKey returns the durable log key (0 = task not logged).
func (r *Record) WALKey() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.walKey
}

// SetMaxRetries configures the retry budget for this task.
func (r *Record) SetMaxRetries(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maxRetries = n
}

// MaxRetries returns the retry budget.
func (r *Record) MaxRetries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.maxRetries
}

// SetExecutor records which executor the task was launched on.
func (r *Record) SetExecutor(label string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.executor = label
}

// Executor returns the label of the executor that ran (or is running) the task.
func (r *Record) Executor() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.executor
}

// SetMemoKey stores the memoization key computed at submit time.
func (r *Record) SetMemoKey(k string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.memoKey = k
}

// MemoKey returns the memoization key ("" when memoization is off).
func (r *Record) MemoKey() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.memoKey
}

// SetPendingDeps initializes the unresolved-dependency counter.
func (r *Record) SetPendingDeps(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pendingDeps = n
}

// DepResolved decrements the unresolved-dependency counter and returns the
// remaining count. The DFK launches the task when it reaches zero.
func (r *Record) DepResolved() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pendingDeps > 0 {
		r.pendingDeps--
	}
	return r.pendingDeps
}

// PendingDeps returns the unresolved-dependency count.
func (r *Record) PendingDeps() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pendingDeps
}

// SetPriority records the per-call dispatch priority (higher runs first).
func (r *Record) SetPriority(p int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.priority = p
}

// Priority returns the dispatch priority (0 unless set at submission).
func (r *Record) Priority() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.priority
}

// SetTimeout records a per-call attempt timeout overriding Config.TaskTimeout.
func (r *Record) SetTimeout(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.timeout = d
}

// Timeout returns the per-call attempt timeout (0 = use the DFK default).
func (r *Record) Timeout() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.timeout
}

// SetDeadline records an absolute per-call deadline.
func (r *Record) SetDeadline(t time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deadline = t
}

// Deadline returns the absolute per-call deadline (zero = none).
func (r *Record) Deadline() time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deadline
}

// SetTenant records the submission's fair-queuing tenant and DRR weight
// (App.Submit's WithTenant). Fixed before the task enters the dispatch
// pipeline; every fair queue the task crosses reads it from here.
func (r *Record) SetTenant(id string, weight int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tenant = id
	r.weight = weight
}

// Tenant returns the fair-queuing tenant id ("" = default tenant).
func (r *Record) Tenant() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tenant
}

// TenantWeight returns the tenant DRR weight carried by this submission
// (0 = no update; queues treat the tenant's current weight, default 1, as
// authoritative).
func (r *Record) TenantWeight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.weight
}

// SetMemoKeyOverride records an explicit per-call memoization key.
func (r *Record) SetMemoKeyOverride(k string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.memoKeyOver = k
}

// MemoKeyOverride returns the explicit memo key ("" = compute from args).
func (r *Record) MemoKeyOverride() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.memoKeyOver
}

// SetPayload records the encode-once serialized arguments at first launch.
func (r *Record) SetPayload(p *serialize.Payload) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.payload = p
}

// Payload returns the encode-once serialized arguments (nil before the task
// first becomes ready, and for memoized tasks that never launched).
func (r *Record) Payload() *serialize.Payload {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.payload
}

// SetAttempt records the in-flight attempt's outcome future and wire id.
func (r *Record) SetAttempt(f *future.Future, wireID int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.attemptFut, r.attemptWire = f, wireID
}

// Attempt returns the current attempt's outcome future and wire id (nil, 0
// before the task first becomes ready).
func (r *Record) Attempt() (*future.Future, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attemptFut, r.attemptWire
}

// Timings returns (launch, start, end) timestamps; zero values when unset.
func (r *Record) Timings() (launch, start, end time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.launchTime, r.startTime, r.endTime
}

// String implements fmt.Stringer.
func (r *Record) String() string {
	return fmt.Sprintf("Task{%d %s %s}", r.ID, r.AppName, r.State())
}
