package task

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// NumShards is the fixed shard count of the graph. Power of two so the
// shard index is a mask of the task id; ids are dense (NextID), so the
// round-robin id→shard mapping keeps shards balanced.
const NumShards = 32

// Graph is the dynamic task dependency DAG held by the DataFlowKernel
// (§3.4). Nodes are task records; a directed edge u→v means v consumes u's
// future. The graph is dynamic: nodes and edges are added as the program
// submits apps, and execution begins as soon as the first ready task exists.
//
// State is sharded N ways by task id with per-shard locks, so concurrent
// submissions from many goroutines do not contend on a single mutex: a
// node's record, its dependency list, and its dependents list all live in
// shard(id), and only AddEdge ever takes two shard locks (in index order).
type Graph struct {
	nextID atomic.Int64
	shards [NumShards]graphShard
}

// graphShard holds the nodes whose id maps to this shard, plus the edge
// lists keyed by those ids: deps[v] = ids v waits on; dependents[u] = ids
// waiting on u.
type graphShard struct {
	mu         sync.RWMutex
	tasks      map[int64]*Record
	deps       map[int64][]int64
	dependents map[int64][]int64
}

// NewGraph returns an empty task graph.
func NewGraph() *Graph {
	g := &Graph{}
	for i := range g.shards {
		s := &g.shards[i]
		s.tasks = make(map[int64]*Record)
		s.deps = make(map[int64][]int64)
		s.dependents = make(map[int64][]int64)
	}
	return g
}

func (g *Graph) shard(id int64) *graphShard {
	return &g.shards[uint64(id)&(NumShards-1)]
}

// NextID reserves and returns a fresh task id.
func (g *Graph) NextID() int64 {
	return g.nextID.Add(1) - 1
}

// Add inserts a record. It panics if the id is already present — ids are
// reserved through NextID, so a duplicate means engine corruption.
func (g *Graph) Add(r *Record) {
	s := g.shard(r.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tasks[r.ID]; dup {
		panic(fmt.Sprintf("task graph: duplicate id %d", r.ID))
	}
	s.tasks[r.ID] = r
}

// AddEdge records that task to depends on task from. Unknown endpoints are
// rejected. Because tasks can only depend on futures that already exist,
// cycles cannot be constructed, which keeps the graph a DAG by construction;
// AddEdge still guards against from==to. Both shard locks are held together
// (ascending index order, to prevent lock-order inversion) so the
// deps/dependents views stay mirror images at every instant.
func (g *Graph) AddEdge(from, to int64) error {
	if from == to {
		return fmt.Errorf("task graph: self edge on %d", from)
	}
	sf, st := g.shard(from), g.shard(to)
	if sf == st {
		sf.mu.Lock()
		defer sf.mu.Unlock()
	} else {
		first, second := sf, st
		if uint64(from)&(NumShards-1) > uint64(to)&(NumShards-1) {
			first, second = st, sf
		}
		first.mu.Lock()
		defer first.mu.Unlock()
		second.mu.Lock()
		defer second.mu.Unlock()
	}
	if _, ok := sf.tasks[from]; !ok {
		return fmt.Errorf("task graph: edge from unknown task %d", from)
	}
	if _, ok := st.tasks[to]; !ok {
		return fmt.Errorf("task graph: edge to unknown task %d", to)
	}
	st.deps[to] = append(st.deps[to], from)
	sf.dependents[from] = append(sf.dependents[from], to)
	return nil
}

// Get returns the record for id, or nil.
func (g *Graph) Get(id int64) *Record {
	s := g.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tasks[id]
}

// Len returns the number of tasks.
func (g *Graph) Len() int {
	n := 0
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		n += len(s.tasks)
		s.mu.RUnlock()
	}
	return n
}

// ShardCounts returns the number of tasks held by each shard; the sum
// always equals Len. Exposed for balance checks in tests and monitoring.
func (g *Graph) ShardCounts() []int {
	out := make([]int, NumShards)
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		out[i] = len(s.tasks)
		s.mu.RUnlock()
	}
	return out
}

// EdgeCount returns the number of dependency edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		for _, d := range s.deps {
			n += len(d)
		}
		s.mu.RUnlock()
	}
	return n
}

// Deps returns a copy of the ids task id depends on.
func (g *Graph) Deps(id int64) []int64 {
	s := g.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int64, len(s.deps[id]))
	copy(out, s.deps[id])
	return out
}

// Dependents returns a copy of the ids that depend on task id.
func (g *Graph) Dependents(id int64) []int64 {
	s := g.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int64, len(s.dependents[id]))
	copy(out, s.dependents[id])
	return out
}

// Tasks returns a snapshot of all records (unordered). The snapshot is
// per-shard consistent, not globally atomic: records added concurrently may
// or may not appear.
func (g *Graph) Tasks() []*Record {
	var out []*Record
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		if out == nil {
			// Dense ids spread uniformly; the first shard's size estimates
			// the total without a second full lock sweep.
			out = make([]*Record, 0, len(s.tasks)*NumShards)
		}
		for _, r := range s.tasks {
			out = append(out, r)
		}
		s.mu.RUnlock()
	}
	return out
}

// CountByState tallies tasks per state; used by the elasticity strategy to
// measure workload pressure and by monitoring summaries.
func (g *Graph) CountByState() map[State]int {
	counts := make(map[State]int)
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		for _, r := range s.tasks {
			counts[r.State()]++
		}
		s.mu.RUnlock()
	}
	return counts
}

// Outstanding returns the number of tasks not yet in a terminal state.
func (g *Graph) Outstanding() int {
	n := 0
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		for _, r := range s.tasks {
			if !r.State().Terminal() {
				n++
			}
		}
		s.mu.RUnlock()
	}
	return n
}
