package task

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// NumShards is the fixed shard count of the graph. Power of two so the
// shard index is a mask of the task id; ids are dense (NextID), so the
// round-robin id→shard mapping keeps shards balanced.
const NumShards = 32

// Graph is the dynamic task dependency DAG held by the DataFlowKernel
// (§3.4). Nodes are task records; a directed edge u→v means v consumes u's
// future. The graph is dynamic: nodes and edges are added as the program
// submits apps, and execution begins as soon as the first ready task exists.
//
// State is sharded N ways by task id with per-shard locks, so concurrent
// submissions from many goroutines do not contend on a single mutex: a
// node's record, its dependency list, and its dependents list all live in
// shard(id), and only AddEdge ever takes two shard locks (in index order).
type Graph struct {
	nextID atomic.Int64
	shards [NumShards]graphShard
}

// graphShard holds the nodes whose id maps to this shard, plus the edge
// lists keyed by those ids: deps[v] = ids v waits on; dependents[u] = ids
// waiting on u.
type graphShard struct {
	mu         sync.RWMutex
	tasks      map[int64]*Record
	deps       map[int64][]int64
	dependents map[int64][]int64

	// Cumulative counts of records pruned from this shard, by terminal
	// state, so state tallies (CountByState, Summary) stay correct after
	// the records themselves have been recycled.
	prunedDone     int64
	prunedFailed   int64
	prunedMemoized int64

	// free is a bounded freelist of edge-list slices recovered from pruned
	// nodes; AddEdge pops it before allocating. Slices recycle within their
	// shard, so no cross-shard lock traffic.
	free [][]int64
}

// maxFreeSlices bounds each shard's edge-slice freelist; beyond this the
// slices go back to the garbage collector.
const maxFreeSlices = 128

// getFreeLocked pops a recycled edge slice (len 0) or returns nil.
func (s *graphShard) getFreeLocked() []int64 {
	if n := len(s.free); n > 0 {
		sl := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return sl
	}
	return nil
}

// putFreeLocked returns an edge slice to the freelist if there is room.
func (s *graphShard) putFreeLocked(sl []int64) {
	if cap(sl) > 0 && len(s.free) < maxFreeSlices {
		s.free = append(s.free, sl[:0])
	}
}

// NewGraph returns an empty task graph.
func NewGraph() *Graph {
	g := &Graph{}
	for i := range g.shards {
		s := &g.shards[i]
		s.tasks = make(map[int64]*Record)
		s.deps = make(map[int64][]int64)
		s.dependents = make(map[int64][]int64)
	}
	return g
}

func (g *Graph) shard(id int64) *graphShard {
	return &g.shards[uint64(id)&(NumShards-1)]
}

// NextID reserves and returns a fresh task id.
func (g *Graph) NextID() int64 {
	return g.nextID.Add(1) - 1
}

// Add inserts a record. It panics if the id is already present — ids are
// reserved through NextID, so a duplicate means engine corruption.
func (g *Graph) Add(r *Record) {
	s := g.shard(r.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tasks[r.ID]; dup {
		panic(fmt.Sprintf("task graph: duplicate id %d", r.ID))
	}
	s.tasks[r.ID] = r
}

// AddEdge records that task to depends on task from. Unknown endpoints are
// rejected. Because tasks can only depend on futures that already exist,
// cycles cannot be constructed, which keeps the graph a DAG by construction;
// AddEdge still guards against from==to. Both shard locks are held together
// (ascending index order, to prevent lock-order inversion) so the
// deps/dependents views stay mirror images at every instant.
func (g *Graph) AddEdge(from, to int64) error {
	if from == to {
		return fmt.Errorf("task graph: self edge on %d", from)
	}
	sf, st := g.shard(from), g.shard(to)
	if sf == st {
		sf.mu.Lock()
		defer sf.mu.Unlock()
	} else {
		first, second := sf, st
		if uint64(from)&(NumShards-1) > uint64(to)&(NumShards-1) {
			first, second = st, sf
		}
		first.mu.Lock()
		defer first.mu.Unlock()
		second.mu.Lock()
		defer second.mu.Unlock()
	}
	if _, ok := sf.tasks[from]; !ok {
		return fmt.Errorf("task graph: edge from unknown task %d", from)
	}
	if _, ok := st.tasks[to]; !ok {
		return fmt.Errorf("task graph: edge to unknown task %d", to)
	}
	dl, ok := st.deps[to]
	if !ok {
		dl = st.getFreeLocked()
	}
	st.deps[to] = append(dl, from)
	rl, ok := sf.dependents[from]
	if !ok {
		rl = sf.getFreeLocked()
	}
	sf.dependents[from] = append(rl, to)
	return nil
}

// Retire prunes a terminal record from its shard — removing the node and its
// edge lists, folding its state into the shard's pruned tallies — and then
// marks the record itself retired so it can be recycled once the last
// in-flight hold drops (see Record.Enter/Exit). After Retire, Get(id)
// returns nil; the task's result lives on in its AppFuture, which dependents
// and the submitting program hold directly. Returns the shard's cumulative
// pruned count, so callers can rate-limit reclamation telemetry.
func (g *Graph) Retire(r *Record) int64 {
	st := r.State()
	s := g.shard(r.ID)
	s.mu.Lock()
	if _, ok := s.tasks[r.ID]; ok {
		delete(s.tasks, r.ID)
		if d, ok := s.deps[r.ID]; ok {
			delete(s.deps, r.ID)
			s.putFreeLocked(d)
		}
		if d, ok := s.dependents[r.ID]; ok {
			delete(s.dependents, r.ID)
			s.putFreeLocked(d)
		}
		switch st {
		case Done:
			s.prunedDone++
		case Failed:
			s.prunedFailed++
		case Memoized:
			s.prunedMemoized++
		}
	}
	pruned := s.prunedDone + s.prunedFailed + s.prunedMemoized
	s.mu.Unlock()
	r.Retire()
	return pruned
}

// LiveNodes returns the number of records currently resident in the graph
// shards — the live frontier plus any terminal records not yet pruned.
func (g *Graph) LiveNodes() int { return g.Len() }

// RecycledNodes returns the cumulative number of records pruned from the
// graph since creation. LiveNodes()+RecycledNodes() equals the total number
// of tasks ever added (when record retention is off).
func (g *Graph) RecycledNodes() int64 {
	var n int64
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		n += s.prunedDone + s.prunedFailed + s.prunedMemoized
		s.mu.RUnlock()
	}
	return n
}

// ShardPruned returns the cumulative pruned count for one shard (monitoring).
func (g *Graph) ShardPruned(shard int) int64 {
	s := &g.shards[shard&(NumShards-1)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.prunedDone + s.prunedFailed + s.prunedMemoized
}

// Shard returns the shard index for a task id.
func Shard(id int64) int { return int(uint64(id) & (NumShards - 1)) }

// Get returns the record for id, or nil.
func (g *Graph) Get(id int64) *Record {
	s := g.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tasks[id]
}

// Len returns the number of tasks.
func (g *Graph) Len() int {
	n := 0
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		n += len(s.tasks)
		s.mu.RUnlock()
	}
	return n
}

// ShardCounts returns the number of tasks held by each shard; the sum
// always equals Len. Exposed for balance checks in tests and monitoring.
func (g *Graph) ShardCounts() []int {
	out := make([]int, NumShards)
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		out[i] = len(s.tasks)
		s.mu.RUnlock()
	}
	return out
}

// EdgeCount returns the number of dependency edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		for _, d := range s.deps {
			n += len(d)
		}
		s.mu.RUnlock()
	}
	return n
}

// Deps returns a copy of the ids task id depends on.
func (g *Graph) Deps(id int64) []int64 {
	s := g.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int64, len(s.deps[id]))
	copy(out, s.deps[id])
	return out
}

// Dependents returns a copy of the ids that depend on task id.
func (g *Graph) Dependents(id int64) []int64 {
	s := g.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int64, len(s.dependents[id]))
	copy(out, s.dependents[id])
	return out
}

// Tasks returns a snapshot of all records (unordered). The snapshot is
// per-shard consistent, not globally atomic: records added concurrently may
// or may not appear.
func (g *Graph) Tasks() []*Record {
	var out []*Record
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		if out == nil {
			// Dense ids spread uniformly; the first shard's size estimates
			// the total without a second full lock sweep.
			out = make([]*Record, 0, len(s.tasks)*NumShards)
		}
		for _, r := range s.tasks {
			out = append(out, r)
		}
		s.mu.RUnlock()
	}
	return out
}

// CountByState tallies tasks per state — both resident records and records
// already pruned by Retire (folded in from the shard tallies) — so summaries
// over a reclaiming graph still account for every task. Used by the
// elasticity strategy to measure workload pressure and by monitoring.
func (g *Graph) CountByState() map[State]int {
	counts := make(map[State]int)
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		for _, r := range s.tasks {
			counts[r.State()]++
		}
		counts[Done] += int(s.prunedDone)
		counts[Failed] += int(s.prunedFailed)
		counts[Memoized] += int(s.prunedMemoized)
		s.mu.RUnlock()
	}
	for st, n := range counts {
		if n == 0 {
			delete(counts, st)
		}
	}
	return counts
}

// Outstanding returns the number of tasks not yet in a terminal state.
func (g *Graph) Outstanding() int {
	n := 0
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		for _, r := range s.tasks {
			if !r.State().Terminal() {
				n++
			}
		}
		s.mu.RUnlock()
	}
	return n
}
