package task

import (
	"fmt"
	"sync"
)

// Graph is the dynamic task dependency DAG held by the DataFlowKernel
// (§3.4). Nodes are task records; a directed edge u→v means v consumes u's
// future. The graph is dynamic: nodes and edges are added as the program
// submits apps, and execution begins as soon as the first ready task exists.
type Graph struct {
	mu    sync.RWMutex
	tasks map[int64]*Record
	// deps[v] = ids v waits on; dependents[u] = ids waiting on u.
	deps       map[int64][]int64
	dependents map[int64][]int64
	nextID     int64
}

// NewGraph returns an empty task graph.
func NewGraph() *Graph {
	return &Graph{
		tasks:      make(map[int64]*Record),
		deps:       make(map[int64][]int64),
		dependents: make(map[int64][]int64),
	}
}

// NextID reserves and returns a fresh task id.
func (g *Graph) NextID() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	id := g.nextID
	g.nextID++
	return id
}

// Add inserts a record. It panics if the id is already present — ids are
// reserved through NextID, so a duplicate means engine corruption.
func (g *Graph) Add(r *Record) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.tasks[r.ID]; dup {
		panic(fmt.Sprintf("task graph: duplicate id %d", r.ID))
	}
	g.tasks[r.ID] = r
}

// AddEdge records that task to depends on task from. Unknown endpoints are
// rejected. Because tasks can only depend on futures that already exist,
// cycles cannot be constructed, which keeps the graph a DAG by construction;
// AddEdge still guards against from==to.
func (g *Graph) AddEdge(from, to int64) error {
	if from == to {
		return fmt.Errorf("task graph: self edge on %d", from)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.tasks[from]; !ok {
		return fmt.Errorf("task graph: edge from unknown task %d", from)
	}
	if _, ok := g.tasks[to]; !ok {
		return fmt.Errorf("task graph: edge to unknown task %d", to)
	}
	g.deps[to] = append(g.deps[to], from)
	g.dependents[from] = append(g.dependents[from], to)
	return nil
}

// Get returns the record for id, or nil.
func (g *Graph) Get(id int64) *Record {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.tasks[id]
}

// Len returns the number of tasks.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.tasks)
}

// EdgeCount returns the number of dependency edges.
func (g *Graph) EdgeCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, d := range g.deps {
		n += len(d)
	}
	return n
}

// Deps returns a copy of the ids task id depends on.
func (g *Graph) Deps(id int64) []int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]int64, len(g.deps[id]))
	copy(out, g.deps[id])
	return out
}

// Dependents returns a copy of the ids that depend on task id.
func (g *Graph) Dependents(id int64) []int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]int64, len(g.dependents[id]))
	copy(out, g.dependents[id])
	return out
}

// Tasks returns a snapshot of all records (unordered).
func (g *Graph) Tasks() []*Record {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]*Record, 0, len(g.tasks))
	for _, r := range g.tasks {
		out = append(out, r)
	}
	return out
}

// CountByState tallies tasks per state; used by the elasticity strategy to
// measure workload pressure and by monitoring summaries.
func (g *Graph) CountByState() map[State]int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	counts := make(map[State]int)
	for _, r := range g.tasks {
		counts[r.State()]++
	}
	return counts
}

// Outstanding returns the number of tasks not yet in a terminal state.
func (g *Graph) Outstanding() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, r := range g.tasks {
		if !r.State().Terminal() {
			n++
		}
	}
	return n
}
