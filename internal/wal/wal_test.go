package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/chaos"
)

// fastOpts keeps group commit latency negligible in tests.
func fastOpts() Options {
	return Options{SyncInterval: time.Millisecond, CompactEvery: -1}
}

// equalFrontiers compares everything replay can observe, including torn-tail
// and record counts, so the flip tests can assert "never silently identical".
func equalFrontiers(a, b *Frontier) bool {
	if a.NextKey != b.NextKey || a.Folded != b.Folded || a.Records != b.Records || a.Torn != b.Torn {
		return false
	}
	if len(a.Live) != len(b.Live) || len(a.Terminals) != len(b.Terminals) {
		return false
	}
	for k, ai := range a.Live {
		bi := b.Live[k]
		if bi == nil || !equalInfo(ai, bi) {
			return false
		}
	}
	for k, at := range a.Terminals {
		bt, ok := b.Terminals[k]
		if !ok || at.Outcome != bt.Outcome || at.Digest != bt.Digest {
			return false
		}
	}
	return true
}

func equalInfo(a, b *TaskInfo) bool {
	return a.Key == b.Key && a.App == b.App && a.MemoKey == b.MemoKey &&
		a.Tenant == b.Tenant && a.Priority == b.Priority && a.Weight == b.Weight &&
		a.MaxRetries == b.MaxRetries && a.Launches == b.Launches &&
		bytes.Equal(a.Payload, b.Payload)
}

// equalLiveSets is the compaction-equivalence relation: a snapshot preserves
// the live frontier, the key sequence, and the terminal total, but folds
// individual terminal records into a count.
func equalLiveSets(t *testing.T, a, b *Frontier) {
	t.Helper()
	if a.NextKey != b.NextKey {
		t.Fatalf("NextKey %d != %d", a.NextKey, b.NextKey)
	}
	if a.TerminalTotal() != b.TerminalTotal() {
		t.Fatalf("TerminalTotal %d != %d", a.TerminalTotal(), b.TerminalTotal())
	}
	if len(a.Live) != len(b.Live) {
		t.Fatalf("live %d != %d", len(a.Live), len(b.Live))
	}
	for k, ai := range a.Live {
		bi := b.Live[k]
		if bi == nil {
			t.Fatalf("task %d missing from second frontier", k)
		}
		if !equalInfo(ai, bi) {
			t.Fatalf("task %d differs: %+v vs %+v", k, ai, bi)
		}
	}
}

func TestWALRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if l.Recovered() != nil {
		t.Fatal("fresh directory should have nothing to recover")
	}
	k1, err := l.Submit("appA", "memo-a", "tenantX", 3, 2, 1, []byte("payload-1"))
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := l.Submit("appB", "", "", 0, 0, 0, []byte("payload-2"))
	k3, _ := l.Submit("appA", "memo-c", "", -5, 1, 2, nil)
	if k1 != 1 || k2 != 2 || k3 != 3 {
		t.Fatalf("keys = %d,%d,%d; want 1,2,3 (key 0 is reserved)", k1, k2, k3)
	}
	if err := l.Launch(k1, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Retry(k1, 2); err != nil {
		t.Fatal(err)
	}
	if err := l.Terminal(k2, OutcomeDone, "digest-2"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	fr, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Records != 6 || fr.Torn != 0 {
		t.Fatalf("Records=%d Torn=%d; want 6, 0", fr.Records, fr.Torn)
	}
	if fr.NextKey != 4 {
		t.Fatalf("NextKey=%d; want 4", fr.NextKey)
	}
	if len(fr.Live) != 2 {
		t.Fatalf("live=%d; want 2", len(fr.Live))
	}
	i1 := fr.Live[k1]
	if i1 == nil || i1.App != "appA" || i1.MemoKey != "memo-a" || i1.Tenant != "tenantX" ||
		i1.Priority != 3 || i1.Weight != 2 || i1.MaxRetries != 1 ||
		i1.Launches != 2 || string(i1.Payload) != "payload-1" {
		t.Fatalf("task 1 replayed wrong: %+v", i1)
	}
	if i3 := fr.Live[k3]; i3 == nil || i3.Priority != -5 || i3.Launches != 0 {
		t.Fatalf("task 3 replayed wrong: %+v", i3)
	}
	term, ok := fr.Terminals[k2]
	if !ok || term.Outcome != OutcomeDone || term.Digest != "digest-2" {
		t.Fatalf("task 2 terminal replayed wrong: %+v", term)
	}
	if term.Info == nil || string(term.Info.Payload) != "payload-2" {
		t.Fatalf("terminal should carry its submit info: %+v", term.Info)
	}

	// Reopen: the replayed frontier is surfaced and the key sequence resumes.
	l2, err := Open(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rec := l2.Recovered()
	if rec == nil || len(rec.Live) != 2 || rec.NextKey != 4 {
		t.Fatalf("reopen lost the frontier: %+v", rec)
	}
	k4, err := l2.Submit("appC", "", "", 0, 0, 0, []byte("p4"))
	if err != nil {
		t.Fatal(err)
	}
	if k4 != 4 {
		t.Fatalf("key after reopen = %d; want 4", k4)
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts()
	opts.SegmentBytes = 256
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 64)
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := l.Submit("rot", "", "", 0, 0, 0, payload); err != nil {
			t.Fatal(err)
		}
		// Flush per record so segment growth is observed against the cap.
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	paths, _, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(paths))
	}
	for _, p := range paths {
		if fi, err := os.Stat(p); err == nil && fi.Size() > 256+512 {
			t.Fatalf("segment %s is %d bytes, far over the 256-byte cap", p, fi.Size())
		}
	}
	fr, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Live) != n || fr.Records != n || fr.NextKey != n+1 {
		t.Fatalf("rotated replay: live=%d records=%d next=%d; want %d, %d, %d",
			len(fr.Live), fr.Records, fr.NextKey, n, n, n+1)
	}
	for k, info := range fr.Live {
		if !bytes.Equal(info.Payload, payload) {
			t.Fatalf("task %d payload corrupted across rotation", k)
		}
	}
}

// TestWALChecksumDetectsEveryByteFlip mirrors the serialize package's
// TestFrameChecksumDetectsEveryByteFlip: no single-byte corruption anywhere in
// a segment may replay to the pristine frontier as if nothing happened — it
// must either fail loudly or visibly lose records (torn tail).
func TestWALChecksumDetectsEveryByteFlip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	k1, _ := l.Submit("flip", "memo-1", "ten", 1, 1, 1, []byte("payload-one"))
	k2, _ := l.Submit("flip", "", "", 0, 0, 0, []byte("payload-two"))
	_ = l.Launch(k1, 1)
	_ = l.Terminal(k2, OutcomeDone, "digest")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	paths, _, err := listSegments(dir)
	if err != nil || len(paths) != 1 {
		t.Fatalf("want one segment, got %d (%v)", len(paths), err)
	}
	pristineData, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	pristine, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if pristine.Records != 4 {
		t.Fatalf("pristine Records=%d; want 4", pristine.Records)
	}

	flipDir := t.TempDir()
	flipPath := filepath.Join(flipDir, filepath.Base(paths[0]))
	for i := range pristineData {
		corrupt := append([]byte(nil), pristineData...)
		corrupt[i] ^= 0xA5
		if err := os.WriteFile(flipPath, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		fr, err := Replay(flipDir)
		if err != nil {
			continue // loud failure: detected
		}
		if equalFrontiers(fr, pristine) {
			t.Fatalf("flipping byte %d went completely undetected", i)
		}
	}
}

func TestWALTruncatedTailReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Submit("trunc", "", "", 0, 0, 0, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	paths, _, _ := listSegments(dir)
	full, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}

	// Every truncation length replays without error; a cut mid-record loses
	// exactly the torn tail, never anything before it.
	cutDir := t.TempDir()
	cutPath := filepath.Join(cutDir, filepath.Base(paths[0]))
	for n := len(full) - 1; n >= 0; n-- {
		if err := os.WriteFile(cutPath, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		fr, err := Replay(cutDir)
		if err != nil {
			t.Fatalf("truncation to %d bytes errored: %v", n, err)
		}
		if fr.Records > 5 || int64(len(fr.Live)) != fr.Records {
			t.Fatalf("truncation to %d bytes replayed records=%d live=%d", n, fr.Records, len(fr.Live))
		}
		if n < len(full) && fr.Records == 5 {
			t.Fatalf("truncation to %d bytes claims all 5 records survived", n)
		}
	}

	// Open truncates the torn tail and keeps appending; the damaged record
	// never resurfaces.
	if err := os.WriteFile(cutPath, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(cutDir, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	rec := l2.Recovered()
	if rec == nil || rec.Torn != 1 || rec.Records != 4 {
		t.Fatalf("reopen after tear: %+v", rec)
	}
	if _, err := l2.Submit("after-tear", "", "", 0, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	fr, err := Replay(cutDir)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Records != 5 || fr.Torn != 0 || len(fr.Live) != 5 {
		t.Fatalf("post-tear append replay: records=%d torn=%d live=%d", fr.Records, fr.Torn, len(fr.Live))
	}
}

func TestWALCompactionEquivalence(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts()
	opts.SegmentBytes = 512 // force multi-segment history
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	var keys []int64
	for i := 0; i < 20; i++ {
		k, err := l.Submit("cmp", "memo", "ten", i, 1, 2, bytes.Repeat([]byte{byte(i)}, 48))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
		_ = l.Launch(k, 1)
		if i%3 == 0 {
			_ = l.Retry(k, 2)
		}
		_ = l.Sync()
	}
	for i := 0; i < 12; i++ {
		if err := l.Terminal(keys[i], OutcomeDone, "d"); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	before, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Live) != 8 || before.TerminalTotal() != 12 {
		t.Fatalf("precondition: live=%d terminals=%d", len(before.Live), before.TerminalTotal())
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	equalLiveSets(t, before, after)
	if after.Folded != 12 || len(after.Terminals) != 0 {
		t.Fatalf("compaction should fold terminals: folded=%d terminals=%d", after.Folded, len(after.Terminals))
	}
	paths, _, _ := listSegments(dir)
	if len(paths) != 1 {
		t.Fatalf("compaction left %d segments; want 1", len(paths))
	}

	// Appends continue after compaction, and a second replay (crash after
	// compaction) still agrees.
	k, err := l.Submit("cmp", "", "", 0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k != before.NextKey {
		t.Fatalf("post-compaction key=%d; want %d", k, before.NextKey)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Live) != 9 || final.TerminalTotal() != 12 || final.NextKey != k+1 {
		t.Fatalf("post-compaction replay: live=%d terminals=%d next=%d",
			len(final.Live), final.TerminalTotal(), final.NextKey)
	}
}

// TestWALAutoCompaction checks the CompactEvery trigger keeps the log at
// O(live frontier): terminal history folds away on its own.
func TestWALAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts()
	opts.CompactEvery = 8
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		k, err := l.Submit("auto", "", "", 0, 0, 0, []byte("p"))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Terminal(k, OutcomeDone, ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fr, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fr.TerminalTotal() != 64 || len(fr.Live) != 0 {
		t.Fatalf("terminals=%d live=%d; want 64, 0", fr.TerminalTotal(), len(fr.Live))
	}
	// All 64 tasks concluded; the snapshot chain must have folded most of the
	// record stream (128 appends) out of the on-disk log.
	if fr.Records > 40 {
		t.Fatalf("auto-compaction left %d records on disk for an empty frontier", fr.Records)
	}
}

// TestWALChaosFreeze pins an injected crash to an exact record boundary: the
// records appended before the boundary are durable, the boundary record and
// everything after it are lost, and the OnCrash hook fires exactly once.
func TestWALChaosFreeze(t *testing.T) {
	restore := chaos.Enable(chaos.New(1, chaos.Plan{
		{Point: chaos.PointWALAppend, Act: chaos.ActKill, Prob: 1, Max: 1, After: 2},
	}))
	defer restore()

	dir := t.TempDir()
	crashes := 0
	opts := fastOpts()
	opts.OnCrash = func() { crashes++ }
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Submit("c", "", "", 0, 0, 0, []byte("a")); err != nil {
		t.Fatal(err) // boundary 0: durable
	}
	if _, err := l.Submit("c", "", "", 0, 0, 0, []byte("b")); err != nil {
		t.Fatal(err) // boundary 1: durable
	}
	if _, err := l.Submit("c", "", "", 0, 0, 0, []byte("c")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("boundary 2 should be the crash: %v", err) // boundary 2: lost
	}
	if err := l.Launch(1, 1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("appends after the crash must keep failing: %v", err)
	}
	if !l.Crashed() {
		t.Fatal("log should report itself crashed")
	}
	if crashes != 1 {
		t.Fatalf("OnCrash fired %d times; want 1", crashes)
	}
	fr, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Records != 2 || len(fr.Live) != 2 {
		t.Fatalf("frozen disk replays records=%d live=%d; want exactly the 2 pre-boundary records",
			fr.Records, len(fr.Live))
	}
}
