// Package wal is the durable dataflow log: an append-only, CRC-32C-framed,
// segment-rotated write-ahead log of task state transitions. The DFK appends
// a record per transition — submit (with the encode-once payload bytes, memo
// key, tenant, priority, and retry budget), launch, retry, terminal — through
// a group-commit buffer, so the dispatch hot path pays one buffered memcpy
// and a background committer batches the file writes and fsyncs. On restart,
// replaying the segments rebuilds the exact pre-crash frontier: terminal
// tasks resolve from the memo/checkpoint layer, live tasks are re-admitted
// exactly once. Compaction folds fully-terminal history into a snapshot
// record so the log stays O(live frontier), mirroring the task graph's
// record-recycling story.
//
// Crash model: process death. Buffered appends that never reached the file
// are lost (by design — group commit trades the tail for throughput), and a
// torn final record is discarded at replay. The chaos plane can freeze the
// log at any record boundary (chaos.PointWALAppend + ActKill) to simulate a
// crash without killing the test process: the on-disk state is byte-for-byte
// what a real death at that boundary leaves behind.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/chaos"
)

// ErrCrashed reports an append against a log frozen by an injected crash:
// from the caller's perspective the disk is gone.
var ErrCrashed = errors.New("wal: log frozen by injected crash")

// ErrClosed reports an append after Close.
var ErrClosed = errors.New("wal: log closed")

// Chaos details passed at the append fault point, so Match can scope a rule
// to one record type.
const (
	detailSubmit   = "submit"
	detailLaunch   = "launch"
	detailRetry    = "retry"
	detailTerminal = "terminal"
	detailSync     = "sync"
)

// Options tune a Log; zero values select the defaults.
type Options struct {
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds this size (default 1 MiB).
	SegmentBytes int64
	// SyncInterval is the group-commit cadence: buffered records are written
	// and fsynced at least this often (default 2ms). Appends between flushes
	// cost one buffered memcpy.
	SyncInterval time.Duration
	// CompactEvery folds terminal history into a snapshot after this many
	// terminal records (default 4096; negative disables auto-compaction).
	CompactEvery int
	// OnCrash is invoked exactly once when an injected crash freezes the
	// log — the DFK freezes the memo checkpoint at the same boundary so the
	// simulated on-disk state is consistent across both durable layers.
	OnCrash func()
}

func (o *Options) normalize() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 2 * time.Millisecond
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = 4096
	}
}

// liveTask is the in-memory mirror of one live task: its encoded submit body
// (re-embedded into snapshot records at compaction) and its launch count.
// Terminal tasks return their liveTask to a free list, so steady state
// appends allocate nothing.
type liveTask struct {
	body     []byte
	launches int
}

// Log is one open write-ahead log over a segment directory.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	segIndex int
	segBytes int64
	buf      []byte // group-commit buffer: framed records not yet written
	scratch  []byte // per-record body scratch, reused
	// syncQ holds rotated-out segments awaiting their final sync+close; the
	// committer drains it outside the lock so rotation never stalls appends
	// on an fsync.
	syncQ   []*os.File
	crashed bool
	closed  bool

	nextKey int64
	// The live mirror is a sliding window over the sequential key space:
	// liveSeq[i] mirrors key liveBase+i (nil once terminal). Submissions
	// append at the tail, settled prefixes slide off the head — O(1) per
	// record with no map hashing inside the append critical section, and
	// compaction walks it already in key order.
	liveBase  int64
	liveSeq   []*liveTask
	liveN     int
	freeList  []*liveTask
	folded    int64 // terminals folded into snapshots
	terminals int64 // terminal records since the last snapshot
	records   int64

	// recovered is the frontier replayed at Open; nil for a fresh directory.
	// dfk.Recover consumes it.
	recovered *Frontier

	done      chan struct{}
	committer sync.WaitGroup
}

// segmentName formats the idx-th segment file name.
func segmentName(idx int) string { return fmt.Sprintf("wal-%08d.seg", idx) }

// listSegments returns the segment files in dir in index order.
func listSegments(dir string) (paths []string, indices []int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.seg", &idx); err == nil {
			paths = append(paths, filepath.Join(dir, e.Name()))
			indices = append(indices, idx)
		}
	}
	sort.Sort(&segSort{paths, indices})
	return paths, indices, nil
}

type segSort struct {
	paths   []string
	indices []int
}

func (s *segSort) Len() int           { return len(s.paths) }
func (s *segSort) Less(i, j int) bool { return s.indices[i] < s.indices[j] }
func (s *segSort) Swap(i, j int) {
	s.paths[i], s.paths[j] = s.paths[j], s.paths[i]
	s.indices[i], s.indices[j] = s.indices[j], s.indices[i]
}

// Replay rebuilds the frontier from the segments in dir without opening the
// log for writing. A torn tail in the last segment is discarded (counted in
// Frontier.Torn); damage anywhere else is an error.
func Replay(dir string) (*Frontier, error) {
	fr, _, err := replayDir(dir)
	return fr, err
}

// replayDir replays every segment, returning the frontier and the byte
// offset of the last good record in the final segment (for tail truncation).
func replayDir(dir string) (*Frontier, int64, error) {
	fr := newFrontier()
	paths, _, err := listSegments(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return fr, 0, nil
		}
		return nil, 0, err
	}
	var lastGood int64
	for i, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: read segment: %w", err)
		}
		good, torn, err := walkFrames(data, fr.apply)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: segment %s: %w", filepath.Base(p), err)
		}
		if torn {
			if i != len(paths)-1 {
				return nil, 0, fmt.Errorf(
					"wal: segment %s: corrupt record at offset %d in a non-final segment",
					filepath.Base(p), good)
			}
			fr.Torn++
		}
		lastGood = good
	}
	return fr, lastGood, nil
}

// Open replays the segments in dir (creating it if needed), truncates any
// torn tail, and opens a fresh segment for appending. The replayed frontier
// is available via Recovered until consumed.
func Open(dir string, opts Options) (*Log, error) {
	opts.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	fr, lastGood, err := replayDir(dir)
	if err != nil {
		return nil, err
	}
	paths, indices, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	nextIdx := 1
	if len(indices) > 0 {
		nextIdx = indices[len(indices)-1] + 1
		// Truncate the torn tail so the damaged record sits in no segment a
		// future replay treats as non-final.
		if fr.Torn > 0 {
			if err := os.Truncate(paths[len(paths)-1], lastGood); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
		}
	}
	l := &Log{
		dir:      dir,
		opts:     opts,
		nextKey:  fr.NextKey,
		liveBase: fr.NextKey,
		folded:   fr.Folded,
		records:  fr.Records,
		done:     make(chan struct{}),
	}
	l.terminals = int64(len(fr.Terminals))
	if fr.Records > 0 || fr.Torn > 0 {
		l.recovered = fr
	}
	// Seed the in-memory frontier mirror from the replay, so compaction
	// snapshots carry replayed live tasks across any number of crashes. The
	// window starts at the lowest live key.
	for key := range fr.Live {
		if key < l.liveBase {
			l.liveBase = key
		}
	}
	l.liveSeq = make([]*liveTask, fr.NextKey-l.liveBase)
	for key, info := range fr.Live {
		lt := &liveTask{launches: info.Launches}
		lt.body = appendSubmitBody(lt.body, info)
		l.liveSeq[key-l.liveBase] = lt
		l.liveN++
	}
	f, err := os.OpenFile(filepath.Join(dir, segmentName(nextIdx)),
		os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment: %w", err)
	}
	l.f = f
	l.segIndex = nextIdx
	l.committer.Add(1)
	go l.commitLoop()
	return l, nil
}

// Recovered returns the frontier replayed at Open (nil for a fresh
// directory).
func (l *Log) Recovered() *Frontier { return l.recovered }

// Dir returns the segment directory.
func (l *Log) Dir() string { return l.dir }

// LiveCount reports tasks submitted but not yet terminal.
func (l *Log) LiveCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.liveN
}

// Records reports records appended or replayed over the log's lifetime.
func (l *Log) Records() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Crashed reports whether an injected crash froze the log.
func (l *Log) Crashed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.crashed
}

// commitLoop is the group-commit pump: every SyncInterval it writes buffered
// records to the segment file and fsyncs, so an append is durable within one
// interval without any fsync on the dispatch path. The fsync itself runs
// OUTSIDE the log mutex — appends keep landing in the buffer while the disk
// syncs, so the hot path never waits out a flush. (Fsyncing a file another
// path has since closed — rotation, compaction — just returns ErrClosed,
// which is fine: whoever closed it synced it first.)
func (l *Log) commitLoop() {
	defer l.committer.Done()
	tick := time.NewTicker(l.opts.SyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-tick.C:
			l.mu.Lock()
			if l.crashed || l.closed {
				l.mu.Unlock()
				return
			}
			if kill, _ := chaos.Crash(chaos.PointWALFsync, detailSync); kill {
				l.freezeLocked()
				l.mu.Unlock()
				return
			}
			l.flushLocked()
			rotated := l.syncQ
			l.syncQ = nil
			f := l.f
			l.mu.Unlock()
			for _, old := range rotated {
				_ = old.Sync()
				_ = old.Close()
			}
			if f != nil {
				_ = f.Sync()
			}
		}
	}
}

// checkAppendLocked gates one append: closed/crashed state first, then the
// chaos fault point — exactly one decision per record boundary, which is
// what lets a test freeze the log at boundary k deterministically.
func (l *Log) checkAppendLocked(detail string) error {
	if l.closed {
		return ErrClosed
	}
	if l.crashed {
		return ErrCrashed
	}
	kill, err := chaos.Crash(chaos.PointWALAppend, detail)
	if kill {
		l.freezeLocked()
		return ErrCrashed
	}
	return err
}

// freezeLocked simulates the process dying at this record boundary: records
// buffered BEFORE the boundary flush and sync (they had every chance to be
// group-committed), the current and all later appends are lost, and the
// OnCrash hook freezes the sibling durable layer (the memo checkpoint).
func (l *Log) freezeLocked() {
	l.flushLocked()
	l.drainSyncQLocked()
	if l.f != nil {
		_ = l.f.Sync()
	}
	l.crashed = true
	if l.opts.OnCrash != nil {
		l.opts.OnCrash()
	}
}

// flushLocked writes the group-commit buffer to the segment file and rotates
// the segment if it outgrew SegmentBytes. Rotation happens only at flush
// boundaries, so a record never spans two segments.
func (l *Log) flushLocked() {
	if len(l.buf) == 0 || l.f == nil {
		return
	}
	if _, err := l.f.Write(l.buf); err == nil {
		l.segBytes += int64(len(l.buf))
	}
	l.buf = l.buf[:0]
	if l.segBytes >= l.opts.SegmentBytes {
		l.rotateLocked()
	}
}

// rotateLocked opens the next segment and queues the current one for its
// final sync+close on the committer, off the append path. Under the
// process-death crash model the written-but-unsynced tail survives in the
// page cache; the deferred fsync only narrows the machine-death window.
func (l *Log) rotateLocked() {
	next, err := os.OpenFile(filepath.Join(l.dir, segmentName(l.segIndex+1)),
		os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return // keep appending to the current segment; rotation is advisory
	}
	l.syncQ = append(l.syncQ, l.f)
	l.f = next
	l.segIndex++
	l.segBytes = 0
}

// drainSyncQLocked syncs and closes every rotated-out segment inline — the
// full-durability paths (freeze, Sync, Close, compaction) use it.
func (l *Log) drainSyncQLocked() {
	for _, f := range l.syncQ {
		_ = f.Sync()
		_ = f.Close()
	}
	l.syncQ = l.syncQ[:0]
}

// appendLocked frames the scratch body into the group-commit buffer. Large
// buffers flush inline so memory stays bounded between committer ticks.
func (l *Log) appendLocked() {
	l.buf = appendFrame(l.buf, l.scratch)
	l.records++
	if len(l.buf) >= 64<<10 {
		l.flushLocked()
	}
}

// liveGet returns the live mirror entry for key, nil if not live.
func (l *Log) liveGet(key int64) *liveTask {
	idx := key - l.liveBase
	if idx < 0 || idx >= int64(len(l.liveSeq)) {
		return nil
	}
	return l.liveSeq[idx]
}

// livePut records a newly submitted key. Keys are assigned in increasing
// order, so the slot is at (or just past) the window tail.
func (l *Log) livePut(key int64, lt *liveTask) {
	for int64(len(l.liveSeq)) <= key-l.liveBase {
		l.liveSeq = append(l.liveSeq, nil)
	}
	l.liveSeq[key-l.liveBase] = lt
	l.liveN++
}

// liveDelete removes and returns key's entry, sliding the window past any
// fully-settled prefix so the slice stays O(live span).
func (l *Log) liveDelete(key int64) *liveTask {
	idx := key - l.liveBase
	if idx < 0 || idx >= int64(len(l.liveSeq)) || l.liveSeq[idx] == nil {
		return nil
	}
	lt := l.liveSeq[idx]
	l.liveSeq[idx] = nil
	l.liveN--
	for len(l.liveSeq) > 0 && l.liveSeq[0] == nil {
		l.liveSeq = l.liveSeq[1:]
		l.liveBase++
	}
	return lt
}

// takeLive pops a recycled liveTask or allocates one.
func (l *Log) takeLive() *liveTask {
	if n := len(l.freeList); n > 0 {
		lt := l.freeList[n-1]
		l.freeList = l.freeList[:n-1]
		lt.launches = 0
		lt.body = lt.body[:0]
		return lt
	}
	return &liveTask{}
}

// Submit appends a task's admission record and returns its durable key. The
// payload bytes are copied into the log's buffers; the caller keeps
// ownership of p.
func (l *Log) Submit(app, memoKey, tenant string, priority, weight, maxRetries int, payload []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkAppendLocked(detailSubmit); err != nil {
		return 0, err
	}
	key := l.nextKey
	l.nextKey++
	info := TaskInfo{
		Key: key, App: app, MemoKey: memoKey, Tenant: tenant,
		Priority: priority, Weight: weight, MaxRetries: maxRetries, Payload: payload,
	}
	l.scratch = append(l.scratch[:0], recSubmit)
	l.scratch = appendSubmitBody(l.scratch, &info)
	l.appendLocked()
	lt := l.takeLive()
	lt.body = append(lt.body, l.scratch[1:]...)
	l.livePut(key, lt)
	return key, nil
}

// Launch appends a task's first executor submission.
func (l *Log) Launch(key int64, attempt int) error {
	return l.attemptRecord(recLaunch, detailLaunch, key, attempt)
}

// LaunchBatch appends first-launch records for a whole dispatch batch under
// one lock acquisition — the lane runner drains tasks in batches, so the
// durable budget charge amortizes the same way the executor submission does.
// Each key is still its own record (and its own chaos boundary). Returns the
// first error; later keys in the batch are still attempted.
func (l *Log) LaunchBatch(keys []int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var first error
	for _, key := range keys {
		if err := l.checkAppendLocked(detailLaunch); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		l.scratch = append(l.scratch[:0], recLaunch)
		l.scratch = appendUvarint(l.scratch, uint64(key))
		l.scratch = appendUvarint(l.scratch, 1)
		l.appendLocked()
		if lt := l.liveGet(key); lt != nil {
			lt.launches++
		}
	}
	return first
}

// Retry appends a further attempt: launch budget consumed, durable across
// any later crash.
func (l *Log) Retry(key int64, attempt int) error {
	return l.attemptRecord(recRetry, detailRetry, key, attempt)
}

func (l *Log) attemptRecord(rec byte, detail string, key int64, attempt int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkAppendLocked(detail); err != nil {
		return err
	}
	l.scratch = append(l.scratch[:0], rec)
	l.scratch = appendUvarint(l.scratch, uint64(key))
	l.scratch = appendUvarint(l.scratch, uint64(attempt))
	l.appendLocked()
	if lt := l.liveGet(key); lt != nil {
		lt.launches++
	}
	return nil
}

// Terminal appends a task's conclusion. digest locates the durable result:
// the memo key for done/memoized outcomes under memoization, "" otherwise.
func (l *Log) Terminal(key int64, outcome Outcome, digest string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkAppendLocked(detailTerminal); err != nil {
		return err
	}
	l.scratch = append(l.scratch[:0], recTerminal)
	l.scratch = appendUvarint(l.scratch, uint64(key))
	l.scratch = appendUvarint(l.scratch, uint64(outcome))
	l.scratch = appendString(l.scratch, digest)
	l.appendLocked()
	if lt := l.liveDelete(key); lt != nil {
		l.freeList = append(l.freeList, lt)
	}
	l.terminals++
	// Auto-compact only when the foldable history has caught up with the live
	// frontier: a snapshot rewrites O(live) bytes to retire O(terminals)
	// records, so requiring terminals ≥ live keeps the amortized cost per
	// record constant — a burst of submissions far ahead of completions never
	// pays a giant snapshot to fold a sliver of history.
	if l.opts.CompactEvery > 0 && l.terminals >= int64(l.opts.CompactEvery) &&
		l.terminals >= int64(l.liveN) {
		l.compactLocked()
	}
	return nil
}

// Sync flushes the group-commit buffer and fsyncs — the durability point
// tests and shutdown use; the committer provides it continuously.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed || l.closed {
		return nil
	}
	l.flushLocked()
	l.drainSyncQLocked()
	if l.f != nil {
		return l.f.Sync()
	}
	return nil
}

// Compact folds terminal history into a snapshot: the full frontier is
// written to a fresh segment, fsynced, and the older segments deleted. Log
// size returns to O(live frontier). Replay of a compacted log yields the
// same live set, next key, and terminal total as replay of the original.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed || l.closed {
		return nil
	}
	return l.compactLocked()
}

// compactLocked writes the snapshot segment before deleting anything, so a
// crash mid-compaction leaves either the old segments (snapshot ignored or
// absent) or the snapshot superseding them — never a torn frontier.
func (l *Log) compactLocked() error {
	l.flushLocked()
	l.scratch = append(l.scratch[:0], recSnapshot)
	l.scratch = appendUvarint(l.scratch, uint64(l.nextKey))
	l.scratch = appendUvarint(l.scratch, uint64(l.folded+l.terminals))
	l.scratch = appendUvarint(l.scratch, uint64(l.liveN))
	// The window is already in ascending key order, so compaction output is
	// deterministic for a given frontier (keeping the flip tests honest).
	for _, lt := range l.liveSeq {
		if lt == nil {
			continue
		}
		l.scratch = appendUvarint(l.scratch, uint64(lt.launches))
		l.scratch = appendBytes(l.scratch, lt.body)
	}
	newIdx := l.segIndex + 1
	path := filepath.Join(l.dir, segmentName(newIdx))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	frame := appendFrame(nil, l.scratch)
	if _, err := f.Write(frame); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: compact write: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: compact sync: %w", err)
	}
	// The snapshot is durable; retire the history it folds. Rotated-out
	// segments still awaiting their deferred sync are among the deleted
	// files — close them without the pointless fsync.
	for _, qf := range l.syncQ {
		_ = qf.Close()
	}
	l.syncQ = l.syncQ[:0]
	old, oldIdx, _ := listSegments(l.dir)
	_ = l.f.Close()
	for i, p := range old {
		if oldIdx[i] < newIdx {
			_ = os.Remove(p)
		}
	}
	l.f = f
	l.segIndex = newIdx
	l.segBytes = int64(len(frame))
	l.records++
	l.folded += l.terminals
	l.terminals = 0
	return nil
}

// Close stops the committer, flushes, fsyncs, and closes the segment file.
// After an injected crash it closes the file without writing anything more.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	close(l.done)
	l.mu.Unlock()
	l.committer.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	if l.f == nil {
		return nil
	}
	var err error
	if !l.crashed {
		l.flushLocked()
		l.drainSyncQLocked()
		err = l.f.Sync()
	} else {
		for _, qf := range l.syncQ {
			_ = qf.Close()
		}
		l.syncQ = l.syncQ[:0]
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
