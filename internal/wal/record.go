// Record framing and replay for the durable dataflow log.
//
// Every record is framed as
//
//	[4B big-endian body length][4B big-endian CRC-32C of body][body]
//
// and the body is one type byte followed by the record's fields in a
// hand-rolled varint encoding (no reflection, no per-record allocations on
// the append path). CRC-32C (Castagnoli) matches the wire-frame checksum in
// internal/serialize: hardware-accelerated, and any single flipped byte in a
// record fails verification instead of replaying into a wrong frontier.
//
// Torn-tail policy: a truncated or checksum-corrupt record in the LAST
// segment ends replay cleanly — it is the partial final write of a crashed
// process, counted in Frontier.Torn and discarded, never an error. The same
// damage in an earlier segment is real corruption (everything after it is
// unreachable, because framing is lost) and replay fails loudly.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Record types.
const (
	recSubmit   byte = 1 // task admitted to dispatch: identity + payload bytes
	recLaunch   byte = 2 // first executor submission of a task
	recRetry    byte = 3 // a further attempt consumed launch budget
	recTerminal byte = 4 // task concluded: outcome + result digest
	recSnapshot byte = 5 // compaction: full frontier, folds terminal history
)

// Outcome is how a task concluded.
type Outcome byte

// Outcomes recorded by terminal records.
const (
	OutcomeDone     Outcome = 1
	OutcomeFailed   Outcome = 2
	OutcomeMemoized Outcome = 3
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeDone:
		return "done"
	case OutcomeFailed:
		return "failed"
	case OutcomeMemoized:
		return "memoized"
	}
	return fmt.Sprintf("Outcome(%d)", byte(o))
}

// TaskInfo is everything a submit record persists about a task — enough to
// re-admit it through the normal dispatch pipeline after a crash.
type TaskInfo struct {
	Key        int64  // durable task key, assigned by the log
	App        string // registered app name
	MemoKey    string // memoization key ("" when memoization is off)
	Tenant     string // fair-queuing tenant id
	Priority   int
	Weight     int
	MaxRetries int
	Launches   int    // replay-computed: launch + retry records seen
	Payload    []byte // encode-once serialized arguments
}

// Terminal is one concluded task as replay sees it.
type Terminal struct {
	Outcome Outcome
	Digest  string // result digest: the memo key locating the durable value
	// Info is the task's submit info when its submit record is still in the
	// log; nil once compaction folded the task's history away.
	Info *TaskInfo
}

// Frontier is the replayed state of a log: what a restarted DFK recovers to.
type Frontier struct {
	NextKey int64 // next unassigned durable task key
	// Live holds tasks with a submit record and no terminal record — the
	// in-flight and pending set at the crash.
	Live map[int64]*TaskInfo
	// Terminals holds tasks that concluded, for terminal records still in
	// the log (not yet folded by compaction).
	Terminals map[int64]Terminal
	// Folded counts terminal tasks compacted out of the log; their results
	// live in the memo checkpoint, not here.
	Folded int64
	// Records counts records replayed (snapshots included).
	Records int64
	// Torn counts partial trailing records discarded from the last segment.
	Torn int
}

// TerminalTotal is the number of tasks known concluded: replayable terminal
// records plus history folded into snapshots.
func (f *Frontier) TerminalTotal() int64 { return int64(len(f.Terminals)) + f.Folded }

// crcTable is CRC-32C (Castagnoli), matching internal/serialize's framing.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderLen is the per-record overhead: 4B length + 4B CRC.
const frameHeaderLen = 8

// appendFrame frames body onto dst.
func appendFrame(dst, body []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(body, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// maxRecordBytes bounds a single record body; a length field beyond it is
// framing damage, not a record (guards replay against absurd allocations).
const maxRecordBytes = 64 << 20

// walkFrames iterates the well-formed frames of one segment, calling apply
// for each body. It returns the byte offset just past the last good frame
// and whether the segment ended with a torn record (truncated or
// checksum-corrupt tail).
func walkFrames(data []byte, apply func(body []byte) error) (good int64, torn bool, err error) {
	off := 0
	for off < len(data) {
		if off+frameHeaderLen > len(data) {
			return int64(off), true, nil
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		if n > maxRecordBytes || off+frameHeaderLen+n > len(data) {
			return int64(off), true, nil
		}
		body := data[off+frameHeaderLen : off+frameHeaderLen+n]
		if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(data[off+4:off+8]) {
			return int64(off), true, nil
		}
		if err := apply(body); err != nil {
			return int64(off), false, err
		}
		off += frameHeaderLen + n
	}
	return int64(off), false, nil
}

// Body encoders. appendString/appendBytes are length-prefixed; ints use
// uvarint (zigzag varint where the value can be negative).

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// appendSubmitBody encodes a submit record body WITHOUT the leading type
// byte — the same shape is embedded per live task inside snapshot records.
func appendSubmitBody(b []byte, info *TaskInfo) []byte {
	b = binary.AppendUvarint(b, uint64(info.Key))
	b = binary.AppendVarint(b, int64(info.Priority))
	b = binary.AppendUvarint(b, uint64(info.Weight))
	b = binary.AppendUvarint(b, uint64(info.MaxRetries))
	b = appendString(b, info.App)
	b = appendString(b, info.MemoKey)
	b = appendString(b, info.Tenant)
	return appendBytes(b, info.Payload)
}

// bodyReader decodes record bodies; the first decode error sticks.
type bodyReader struct {
	b   []byte
	err error
}

func (r *bodyReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wal: truncated %s field", what)
	}
}

func (r *bodyReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *bodyReader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *bodyReader) str(what string) string {
	return string(r.bytes(what))
}

// bytes returns a view into the body; callers that retain it must copy.
func (r *bodyReader) bytes(what string) []byte {
	n := r.uvarint(what)
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)) < n {
		r.fail(what)
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

// readSubmitBody decodes one submit body (sans type byte), copying the
// payload so the TaskInfo outlives the segment buffer.
func readSubmitBody(r *bodyReader) *TaskInfo {
	info := &TaskInfo{}
	info.Key = int64(r.uvarint("key"))
	info.Priority = int(r.varint("priority"))
	info.Weight = int(r.uvarint("weight"))
	info.MaxRetries = int(r.uvarint("maxRetries"))
	info.App = r.str("app")
	info.MemoKey = r.str("memoKey")
	info.Tenant = r.str("tenant")
	info.Payload = append([]byte(nil), r.bytes("payload")...)
	return info
}

// apply folds one record body into the frontier.
func (f *Frontier) apply(body []byte) error {
	if len(body) == 0 {
		return fmt.Errorf("wal: empty record body")
	}
	r := &bodyReader{b: body[1:]}
	switch body[0] {
	case recSubmit:
		info := readSubmitBody(r)
		if r.err != nil {
			return r.err
		}
		f.Live[info.Key] = info
		if info.Key >= f.NextKey {
			f.NextKey = info.Key + 1
		}
	case recLaunch, recRetry:
		key := int64(r.uvarint("key"))
		r.uvarint("attempt")
		if r.err != nil {
			return r.err
		}
		if info := f.Live[key]; info != nil {
			info.Launches++
		}
	case recTerminal:
		key := int64(r.uvarint("key"))
		outcome := Outcome(r.uvarint("outcome"))
		digest := r.str("digest")
		if r.err != nil {
			return r.err
		}
		info := f.Live[key]
		delete(f.Live, key)
		f.Terminals[key] = Terminal{Outcome: outcome, Digest: digest, Info: info}
	case recSnapshot:
		// A snapshot supersedes everything replayed before it: compaction
		// wrote the full frontier, and any older segments that survived a
		// crash mid-compaction describe exactly the folded history.
		nextKey := int64(r.uvarint("nextKey"))
		folded := int64(r.uvarint("folded"))
		nLive := r.uvarint("nLive")
		live := make(map[int64]*TaskInfo, nLive)
		for i := uint64(0); i < nLive; i++ {
			launches := int(r.uvarint("launches"))
			entry := &bodyReader{b: r.bytes("entry")}
			info := readSubmitBody(entry)
			if r.err != nil || entry.err != nil {
				if r.err == nil {
					r.err = entry.err
				}
				return r.err
			}
			info.Launches = launches
			live[info.Key] = info
		}
		if r.err != nil {
			return r.err
		}
		f.NextKey = nextKey
		f.Folded = folded
		f.Live = live
		f.Terminals = make(map[int64]Terminal)
	default:
		return fmt.Errorf("wal: unknown record type %d", body[0])
	}
	if r.err != nil {
		return r.err
	}
	f.Records++
	return nil
}

func newFrontier() *Frontier {
	return &Frontier{
		NextKey:   1, // key 0 is reserved as "no WAL key"
		Live:      make(map[int64]*TaskInfo),
		Terminals: make(map[int64]Terminal),
	}
}
