// Package globus simulates the Globus transfer service that Parsl's data
// manager uses for third-party transfers (§4.5) and the Globus Auth identity
// platform it authenticates with (§4.6). The real service moves files
// between registered endpoints without routing bytes through the client;
// this simulation reproduces that control/data split: a transfer is an
// asynchronous server-side job between two named endpoints, observable
// through task status polls, with bandwidth-derived completion times.
package globus

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Errors returned by the service.
var (
	ErrAuth         = errors.New("globus: invalid or expired token")
	ErrNoEndpoint   = errors.New("globus: unknown endpoint")
	ErrNoFile       = errors.New("globus: no such file")
	ErrNoTask       = errors.New("globus: no such task")
	ErrEndpointDown = errors.New("globus: endpoint deactivated")
)

// TransferStatus is the lifecycle of a transfer task.
type TransferStatus string

// Transfer states, matching the Globus task model.
const (
	StatusActive    TransferStatus = "ACTIVE"
	StatusSucceeded TransferStatus = "SUCCEEDED"
	StatusFailed    TransferStatus = "FAILED"
)

// Endpoint is a named storage location with an in-memory namespace.
type Endpoint struct {
	Name string

	mu     sync.RWMutex
	files  map[string][]byte
	active bool
}

// Put writes a file into the endpoint's namespace.
func (e *Endpoint) Put(path string, data []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	e.files[path] = cp
}

// Get reads a file from the endpoint's namespace.
func (e *Endpoint) Get(path string) ([]byte, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	data, ok := e.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s:%s", ErrNoFile, e.Name, path)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Exists reports whether path is present.
func (e *Endpoint) Exists(path string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.files[path]
	return ok
}

// Task is an asynchronous third-party transfer job.
type Task struct {
	ID       string
	Src, Dst string // "endpoint:path"

	mu     sync.Mutex
	status TransferStatus
	reason string
	done   chan struct{}
}

// Status returns the task's current status and failure reason (if any).
func (t *Task) Status() (TransferStatus, string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status, t.reason
}

// Wait blocks until the task leaves ACTIVE or the timeout expires.
func (t *Task) Wait(timeout time.Duration) (TransferStatus, error) {
	select {
	case <-t.done:
		s, reason := t.Status()
		if s == StatusFailed {
			return s, fmt.Errorf("globus: transfer %s failed: %s", t.ID, reason)
		}
		return s, nil
	case <-time.After(timeout):
		return StatusActive, fmt.Errorf("globus: transfer %s timed out after %v", t.ID, timeout)
	}
}

func (t *Task) finish(s TransferStatus, reason string) {
	t.mu.Lock()
	if t.status == StatusActive {
		t.status = s
		t.reason = reason
		close(t.done)
	}
	t.mu.Unlock()
}

// Service is the simulated Globus transfer service plus Auth.
type Service struct {
	// BytesPerSecond models WAN bandwidth for completion-time estimates.
	// Zero means instantaneous transfers (useful in unit tests).
	BytesPerSecond float64
	// BaseLatency is per-transfer control overhead.
	BaseLatency time.Duration

	mu        sync.Mutex
	endpoints map[string]*Endpoint
	tasks     map[string]*Task
	tokens    map[string]time.Time
}

// NewService creates an empty simulated Globus deployment.
func NewService() *Service {
	return &Service{
		endpoints: make(map[string]*Endpoint),
		tasks:     make(map[string]*Task),
		tokens:    make(map[string]time.Time),
	}
}

// Login models the Globus Auth native-app flow (§4.6): it issues a cached
// access token with the given lifetime.
func (s *Service) Login(lifetime time.Duration) string {
	b := make([]byte, 16)
	_, _ = rand.Read(b)
	tok := hex.EncodeToString(b)
	s.mu.Lock()
	s.tokens[tok] = time.Now().Add(lifetime)
	s.mu.Unlock()
	return tok
}

// validate checks a token.
func (s *Service) validate(token string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	exp, ok := s.tokens[token]
	if !ok || time.Now().After(exp) {
		return ErrAuth
	}
	return nil
}

// AddEndpoint registers a named endpoint and returns it activated.
func (s *Service) AddEndpoint(name string) *Endpoint {
	ep := &Endpoint{Name: name, files: make(map[string][]byte), active: true}
	s.mu.Lock()
	s.endpoints[name] = ep
	s.mu.Unlock()
	return ep
}

// Endpoint looks up a registered endpoint.
func (s *Service) Endpoint(name string) (*Endpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ep, ok := s.endpoints[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoEndpoint, name)
	}
	return ep, nil
}

// Deactivate marks an endpoint down; transfers touching it fail, the way an
// expired endpoint activation fails in production.
func (s *Service) Deactivate(name string) error {
	ep, err := s.Endpoint(name)
	if err != nil {
		return err
	}
	ep.mu.Lock()
	ep.active = false
	ep.mu.Unlock()
	return nil
}

// Submit starts an asynchronous third-party transfer of srcPath on endpoint
// src to dstPath on endpoint dst. The bytes never pass through the caller.
func (s *Service) Submit(token, src, srcPath, dst, dstPath string) (*Task, error) {
	if err := s.validate(token); err != nil {
		return nil, err
	}
	srcEP, err := s.Endpoint(src)
	if err != nil {
		return nil, err
	}
	dstEP, err := s.Endpoint(dst)
	if err != nil {
		return nil, err
	}

	b := make([]byte, 8)
	_, _ = rand.Read(b)
	task := &Task{
		ID:     hex.EncodeToString(b),
		Src:    src + ":" + srcPath,
		Dst:    dst + ":" + dstPath,
		status: StatusActive,
		done:   make(chan struct{}),
	}
	s.mu.Lock()
	s.tasks[task.ID] = task
	s.mu.Unlock()

	go s.run(task, srcEP, srcPath, dstEP, dstPath)
	return task, nil
}

func (s *Service) run(task *Task, srcEP *Endpoint, srcPath string, dstEP *Endpoint, dstPath string) {
	if s.BaseLatency > 0 {
		time.Sleep(s.BaseLatency)
	}
	srcEP.mu.RLock()
	srcActive := srcEP.active
	srcEP.mu.RUnlock()
	dstEP.mu.RLock()
	dstActive := dstEP.active
	dstEP.mu.RUnlock()
	if !srcActive || !dstActive {
		task.finish(StatusFailed, ErrEndpointDown.Error())
		return
	}
	data, err := srcEP.Get(srcPath)
	if err != nil {
		task.finish(StatusFailed, err.Error())
		return
	}
	if s.BytesPerSecond > 0 {
		d := time.Duration(float64(len(data)) / s.BytesPerSecond * float64(time.Second))
		time.Sleep(d)
	}
	dstEP.Put(dstPath, data)
	task.finish(StatusSucceeded, "")
}

// TaskStatus polls a transfer by id.
func (s *Service) TaskStatus(id string) (TransferStatus, error) {
	s.mu.Lock()
	task, ok := s.tasks[id]
	s.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNoTask, id)
	}
	st, _ := task.Status()
	return st, nil
}
