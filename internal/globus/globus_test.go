package globus

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestLoginAndTokenValidation(t *testing.T) {
	s := NewService()
	tok := s.Login(time.Hour)
	if err := s.validate(tok); err != nil {
		t.Fatal(err)
	}
	if err := s.validate("bogus"); !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v", err)
	}
}

func TestExpiredToken(t *testing.T) {
	s := NewService()
	tok := s.Login(-time.Second)
	if _, err := s.Submit(tok, "a", "f", "b", "f"); !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v", err)
	}
}

func TestEndpointNamespace(t *testing.T) {
	s := NewService()
	ep := s.AddEndpoint("mdf")
	ep.Put("/data/x.csv", []byte("1,2,3"))
	if !ep.Exists("/data/x.csv") {
		t.Fatal("file missing")
	}
	data, err := ep.Get("/data/x.csv")
	if err != nil || string(data) != "1,2,3" {
		t.Fatalf("get = %q, %v", data, err)
	}
	if _, err := ep.Get("/nope"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("err = %v", err)
	}
	// Isolation: mutating the returned slice must not touch the store.
	data[0] = 'X'
	again, _ := ep.Get("/data/x.csv")
	if string(again) != "1,2,3" {
		t.Fatal("endpoint data mutated through Get result")
	}
}

func TestThirdPartyTransfer(t *testing.T) {
	s := NewService()
	src := s.AddEndpoint("alcf")
	dst := s.AddEndpoint("midway")
	src.Put("/sim/catalog.bin", []byte("catalog-bytes"))
	tok := s.Login(time.Hour)

	task, err := s.Submit(tok, "alcf", "/sim/catalog.bin", "midway", "/stage/catalog.bin")
	if err != nil {
		t.Fatal(err)
	}
	st, err := task.Wait(2 * time.Second)
	if err != nil || st != StatusSucceeded {
		t.Fatalf("wait = %v, %v", st, err)
	}
	got, err := dst.Get("/stage/catalog.bin")
	if err != nil || string(got) != "catalog-bytes" {
		t.Fatalf("dst = %q, %v", got, err)
	}
	// Poll API agrees.
	pst, err := s.TaskStatus(task.ID)
	if err != nil || pst != StatusSucceeded {
		t.Fatalf("poll = %v, %v", pst, err)
	}
}

func TestTransferMissingSourceFails(t *testing.T) {
	s := NewService()
	s.AddEndpoint("a")
	s.AddEndpoint("b")
	tok := s.Login(time.Hour)
	task, err := s.Submit(tok, "a", "/missing", "b", "/x")
	if err != nil {
		t.Fatal(err)
	}
	st, err := task.Wait(2 * time.Second)
	if st != StatusFailed || err == nil {
		t.Fatalf("wait = %v, %v", st, err)
	}
}

func TestTransferUnknownEndpoints(t *testing.T) {
	s := NewService()
	s.AddEndpoint("a")
	tok := s.Login(time.Hour)
	if _, err := s.Submit(tok, "nope", "/x", "a", "/x"); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Submit(tok, "a", "/x", "nope", "/x"); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeactivatedEndpointFailsTransfer(t *testing.T) {
	s := NewService()
	src := s.AddEndpoint("a")
	s.AddEndpoint("b")
	src.Put("/f", []byte("x"))
	if err := s.Deactivate("b"); err != nil {
		t.Fatal(err)
	}
	tok := s.Login(time.Hour)
	task, _ := s.Submit(tok, "a", "/f", "b", "/f")
	st, _ := task.Wait(2 * time.Second)
	if st != StatusFailed {
		t.Fatalf("status = %v", st)
	}
	if _, reason := task.Status(); reason != ErrEndpointDown.Error() {
		t.Fatalf("reason = %q", reason)
	}
}

func TestBandwidthDelaysCompletion(t *testing.T) {
	s := NewService()
	s.BytesPerSecond = 1000 // 1 KB/s
	src := s.AddEndpoint("a")
	s.AddEndpoint("b")
	src.Put("/f", make([]byte, 50)) // 50 ms at 1 KB/s
	tok := s.Login(time.Hour)
	start := time.Now()
	task, _ := s.Submit(tok, "a", "/f", "b", "/f")
	if _, err := task.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("transfer finished in %v, bandwidth not modeled", elapsed)
	}
}

func TestWaitTimeout(t *testing.T) {
	s := NewService()
	s.BaseLatency = time.Second
	src := s.AddEndpoint("a")
	s.AddEndpoint("b")
	src.Put("/f", []byte("x"))
	tok := s.Login(time.Hour)
	task, _ := s.Submit(tok, "a", "/f", "b", "/f")
	st, err := task.Wait(10 * time.Millisecond)
	if err == nil || st != StatusActive {
		t.Fatalf("wait = %v, %v", st, err)
	}
}

func TestTaskStatusUnknown(t *testing.T) {
	s := NewService()
	if _, err := s.TaskStatus("ghost"); !errors.Is(err, ErrNoTask) {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentTransfers(t *testing.T) {
	s := NewService()
	src := s.AddEndpoint("src")
	dst := s.AddEndpoint("dst")
	tok := s.Login(time.Hour)
	const n = 32
	for i := 0; i < n; i++ {
		src.Put(pathOf(i), []byte{byte(i)})
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			task, err := s.Submit(tok, "src", pathOf(i), "dst", pathOf(i))
			if err != nil {
				t.Error(err)
				return
			}
			if st, err := task.Wait(5 * time.Second); err != nil || st != StatusSucceeded {
				t.Errorf("transfer %d: %v %v", i, st, err)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if !dst.Exists(pathOf(i)) {
			t.Fatalf("file %d missing at destination", i)
		}
	}
}

func pathOf(i int) string { return "/f" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }
