// Package container simulates the container runtime Parsl integrates for
// task isolation (§4.6: "Parsl allows workers to be launched inside a
// predefined container ... Parsl also allows containers to be used to
// execute tasks such that each invocation of a task will run a new
// container"). The DLHub use case (§2.1) motivates it: diverse ML models
// with conflicting dependencies, isolated per task.
//
// The simulation reproduces the operationally relevant behaviour: images
// must be pulled before first use (a real, size-dependent delay), pulled
// images are cached per node, container startup costs a fixed overhead per
// invocation in per-task mode and once per worker in per-worker mode, and
// running in a container scopes the app to an isolated working directory.
package container

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/serialize"
)

// Image describes a container image in the registry.
type Image struct {
	Name string
	// SizeMB determines pull time.
	SizeMB int
	// Env is the environment the image provides (visible to apps through
	// the invocation's kwargs under "_container_env").
	Env map[string]string
}

// Registry is a remote image registry with pull bandwidth.
type Registry struct {
	// PullMBPerSec models registry bandwidth (0 = instantaneous).
	PullMBPerSec float64

	mu     sync.Mutex
	images map[string]Image
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{images: make(map[string]Image)} }

// Push publishes an image.
func (r *Registry) Push(img Image) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.images[img.Name] = img
}

// ErrNoImage is returned when pulling an unpublished image.
var ErrNoImage = errors.New("container: no such image")

// pull fetches an image's metadata, charging the transfer delay.
func (r *Registry) pull(name string) (Image, error) {
	r.mu.Lock()
	img, ok := r.images[name]
	bw := r.PullMBPerSec
	r.mu.Unlock()
	if !ok {
		return Image{}, fmt.Errorf("%w: %s", ErrNoImage, name)
	}
	if bw > 0 {
		time.Sleep(time.Duration(float64(img.SizeMB) / bw * float64(time.Second)))
	}
	return img, nil
}

// Runtime is a node-local container runtime with an image cache.
type Runtime struct {
	registry *Registry
	// StartOverhead is charged for every container start.
	StartOverhead time.Duration
	// WorkRoot hosts per-container working directories.
	WorkRoot string

	mu     sync.Mutex
	cache  map[string]Image
	starts int64
	pulls  int64
}

// NewRuntime creates a runtime bound to a registry.
func NewRuntime(reg *Registry, workRoot string) *Runtime {
	return &Runtime{
		registry:      reg,
		StartOverhead: time.Millisecond,
		WorkRoot:      workRoot,
		cache:         make(map[string]Image),
	}
}

// Starts returns the number of containers started (ablation metric).
func (rt *Runtime) Starts() int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.starts
}

// Pulls returns the number of registry pulls (cache-effectiveness metric).
func (rt *Runtime) Pulls() int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.pulls
}

// ensure returns the image, pulling and caching on first use.
func (rt *Runtime) ensure(name string) (Image, error) {
	rt.mu.Lock()
	img, ok := rt.cache[name]
	rt.mu.Unlock()
	if ok {
		return img, nil
	}
	img, err := rt.registry.pull(name)
	if err != nil {
		return Image{}, err
	}
	rt.mu.Lock()
	rt.cache[name] = img
	rt.pulls++
	rt.mu.Unlock()
	return img, nil
}

// start brings a container up: image ensured, start overhead charged, an
// isolated working directory created.
func (rt *Runtime) start(name string) (Image, string, func(), error) {
	img, err := rt.ensure(name)
	if err != nil {
		return Image{}, "", nil, err
	}
	rt.mu.Lock()
	rt.starts++
	n := rt.starts
	rt.mu.Unlock()
	if rt.StartOverhead > 0 {
		time.Sleep(rt.StartOverhead)
	}
	dir := filepath.Join(rt.WorkRoot, fmt.Sprintf("ctr-%s-%d", sanitize(name), n))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Image{}, "", nil, fmt.Errorf("container: workdir: %w", err)
	}
	cleanup := func() { _ = os.RemoveAll(dir) }
	return img, dir, cleanup, nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// Mode selects the two §4.6 container modes.
type Mode int

const (
	// PerTask starts a fresh container for every invocation (strongest
	// isolation; DLHub's requirement).
	PerTask Mode = iota
	// PerWorker starts one container per worker and reuses it (the
	// "workers launched inside a predefined container" mode).
	PerWorker
)

// KwEnv is the kwarg key under which the container's environment and
// working directory are exposed to the app.
const (
	KwEnv     = "_container_env"
	KwWorkDir = "_container_workdir"
)

// Wrap turns an app function into a containerized one. In PerTask mode
// every invocation starts (and tears down) its own container; in PerWorker
// mode the container starts lazily once and is shared by subsequent
// invocations through this wrapper instance.
func Wrap(rt *Runtime, image string, mode Mode, fn serialize.Fn) serialize.Fn {
	var (
		once sync.Once
		pImg Image
		pDir string
		pErr error
	)
	return func(args []any, kwargs map[string]any) (any, error) {
		var img Image
		var dir string
		switch mode {
		case PerWorker:
			once.Do(func() { pImg, pDir, _, pErr = rt.start(image) })
			if pErr != nil {
				return nil, pErr
			}
			img, dir = pImg, pDir
		default:
			var cleanup func()
			var err error
			img, dir, cleanup, err = rt.start(image)
			if err != nil {
				return nil, err
			}
			defer cleanup()
		}
		kw := make(map[string]any, len(kwargs)+2)
		for k, v := range kwargs {
			kw[k] = v
		}
		kw[KwEnv] = img.Env
		kw[KwWorkDir] = dir
		return fn(args, kw)
	}
}
