package container

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/serialize"
)

func newRT(t *testing.T) (*Registry, *Runtime) {
	t.Helper()
	reg := NewRegistry()
	reg.Push(Image{Name: "tensorflow:2.1", SizeMB: 10, Env: map[string]string{"CUDA": "10.1"}})
	reg.Push(Image{Name: "alpine", SizeMB: 1})
	rt := NewRuntime(reg, t.TempDir())
	rt.StartOverhead = 0
	return reg, rt
}

func echoEnv(args []any, kwargs map[string]any) (any, error) {
	env := kwargs[KwEnv].(map[string]string)
	return env["CUDA"], nil
}

func TestPerTaskIsolatedStarts(t *testing.T) {
	_, rt := newRT(t)
	fn := Wrap(rt, "tensorflow:2.1", PerTask, echoEnv)
	for i := 0; i < 3; i++ {
		v, err := fn(nil, nil)
		if err != nil || v != "10.1" {
			t.Fatalf("invocation %d: %v, %v", i, v, err)
		}
	}
	if rt.Starts() != 3 {
		t.Fatalf("starts = %d, want one per invocation", rt.Starts())
	}
	if rt.Pulls() != 1 {
		t.Fatalf("pulls = %d, image cache ineffective", rt.Pulls())
	}
}

func TestPerWorkerSharedContainer(t *testing.T) {
	_, rt := newRT(t)
	fn := Wrap(rt, "tensorflow:2.1", PerWorker, echoEnv)
	for i := 0; i < 5; i++ {
		if _, err := fn(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if rt.Starts() != 1 {
		t.Fatalf("starts = %d, want one shared container", rt.Starts())
	}
}

func TestWorkdirIsolationPerTask(t *testing.T) {
	_, rt := newRT(t)
	var dirs []string
	var mu sync.Mutex
	fn := Wrap(rt, "alpine", PerTask, func(_ []any, kwargs map[string]any) (any, error) {
		mu.Lock()
		dirs = append(dirs, kwargs[KwWorkDir].(string))
		mu.Unlock()
		return nil, nil
	})
	_, _ = fn(nil, nil)
	_, _ = fn(nil, nil)
	if len(dirs) != 2 || dirs[0] == dirs[1] {
		t.Fatalf("workdirs not isolated: %v", dirs)
	}
}

func TestUnknownImage(t *testing.T) {
	_, rt := newRT(t)
	fn := Wrap(rt, "ghost:latest", PerTask, echoEnv)
	if _, err := fn(nil, nil); !errors.Is(err, ErrNoImage) {
		t.Fatalf("err = %v", err)
	}
}

func TestPullBandwidthCharged(t *testing.T) {
	reg := NewRegistry()
	reg.PullMBPerSec = 100 // 10 MB image -> 100 ms
	reg.Push(Image{Name: "big", SizeMB: 10})
	rt := NewRuntime(reg, t.TempDir())
	rt.StartOverhead = 0
	fn := Wrap(rt, "big", PerTask, func([]any, map[string]any) (any, error) { return nil, nil })
	start := time.Now()
	if _, err := fn(nil, nil); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 90*time.Millisecond {
		t.Fatal("pull bandwidth not charged")
	}
	// Cached: second invocation is fast.
	start = time.Now()
	_, _ = fn(nil, nil)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("image cache not used")
	}
}

func TestStartOverheadCharged(t *testing.T) {
	_, rt := newRT(t)
	rt.StartOverhead = 20 * time.Millisecond
	fn := Wrap(rt, "alpine", PerTask, func([]any, map[string]any) (any, error) { return nil, nil })
	start := time.Now()
	_, _ = fn(nil, nil)
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("start overhead not charged")
	}
}

func TestKwargsPreserved(t *testing.T) {
	_, rt := newRT(t)
	fn := Wrap(rt, "alpine", PerTask, func(_ []any, kwargs map[string]any) (any, error) {
		return kwargs["user_key"], nil
	})
	v, err := fn(nil, map[string]any{"user_key": 42})
	if err != nil || v != 42 {
		t.Fatalf("kwargs lost: %v, %v", v, err)
	}
}

func TestWrapSatisfiesSerializeFn(t *testing.T) {
	_, rt := newRT(t)
	var _ serialize.Fn = Wrap(rt, "alpine", PerTask, echoEnv)
}

func TestConcurrentPerTaskContainers(t *testing.T) {
	_, rt := newRT(t)
	fn := Wrap(rt, "alpine", PerTask, func(_ []any, kwargs map[string]any) (any, error) {
		return kwargs[KwWorkDir], nil
	})
	var wg sync.WaitGroup
	seen := sync.Map{}
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := fn(nil, nil)
			if err != nil {
				t.Error(err)
				return
			}
			if _, dup := seen.LoadOrStore(v, true); dup {
				t.Errorf("workdir reused concurrently: %v", v)
			}
		}()
	}
	wg.Wait()
	if rt.Starts() != 16 {
		t.Fatalf("starts = %d", rt.Starts())
	}
}
