package provider

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/launcher"
)

// countingPayload returns a Payload that tracks started/stopped node counts.
func countingPayload(started, stopped *atomic.Int32) Payload {
	return func(n Node) (func(), error) {
		started.Add(1)
		return func() { stopped.Add(1) }, nil
	}
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestLocalProviderLifecycle(t *testing.T) {
	var started, stopped atomic.Int32
	p := NewLocal(Config{NodesPerBlock: 3})
	if p.Name() != "local" || p.NodesPerBlock() != 3 {
		t.Fatal("identity")
	}
	id, err := p.SubmitBlock(countingPayload(&started, &stopped))
	if err != nil {
		t.Fatal(err)
	}
	if started.Load() != 3 {
		t.Fatalf("started = %d", started.Load())
	}
	st, err := p.Status(id)
	if err != nil || st != StatusRunning {
		t.Fatalf("status = %v, %v", st, err)
	}
	if err := p.CancelBlock(id); err != nil {
		t.Fatal(err)
	}
	if stopped.Load() != 3 {
		t.Fatalf("stopped = %d", stopped.Load())
	}
	st, _ = p.Status(id)
	if st != StatusCancelled {
		t.Fatalf("status after cancel = %v", st)
	}
}

func TestLocalProviderPayloadError(t *testing.T) {
	p := NewLocal(Config{NodesPerBlock: 2})
	calls := 0
	_, err := p.SubmitBlock(func(n Node) (func(), error) {
		calls++
		return nil, errors.New("no dice")
	})
	if err == nil {
		t.Fatal("payload error swallowed")
	}
	if calls != 1 {
		t.Fatalf("kept launching after failure: %d calls", calls)
	}
}

func TestLocalProviderUnknownBlock(t *testing.T) {
	p := NewLocal(Config{})
	if _, err := p.Status("ghost"); !errors.Is(err, ErrNoBlock) {
		t.Fatalf("err = %v", err)
	}
	if err := p.CancelBlock("ghost"); !errors.Is(err, ErrNoBlock) {
		t.Fatalf("err = %v", err)
	}
}

func TestConfigNormalization(t *testing.T) {
	p := NewLocal(Config{})
	if p.NodesPerBlock() != 1 {
		t.Fatal("NodesPerBlock default")
	}
}

func newSlurmOnCluster(t *testing.T, nodes int, cfg Config) (*Batch, *cluster.Cluster) {
	t.Helper()
	cl, err := cluster.New(cluster.Config{Name: "sim", Nodes: nodes, CoresPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return NewSlurm(cl, cfg), cl
}

func TestSlurmProviderRunsPayloadPerNode(t *testing.T) {
	var started, stopped atomic.Int32
	p, _ := newSlurmOnCluster(t, 4, Config{NodesPerBlock: 2})
	id, err := p.SubmitBlock(countingPayload(&started, &stopped))
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "payload start", func() bool { return started.Load() == 2 })
	st, err := p.Status(id)
	if err != nil || st != StatusRunning {
		t.Fatalf("status = %v, %v", st, err)
	}
	if err := p.CancelBlock(id); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "payload stop", func() bool { return stopped.Load() == 2 })
	waitCond(t, "cancelled status", func() bool {
		st, _ := p.Status(id)
		return st == StatusCancelled
	})
}

func TestSlurmSubmitScript(t *testing.T) {
	p, _ := newSlurmOnCluster(t, 4, Config{
		NodesPerBlock:  2,
		WorkersPerNode: 4,
		Walltime:       time.Hour,
		SchedulerOpts:  "--qos=high",
		WorkerInit:     "module load parsl",
		Launcher:       launcher.Srun{},
	})
	var started, stopped atomic.Int32
	if _, err := p.SubmitBlock(countingPayload(&started, &stopped)); err != nil {
		t.Fatal(err)
	}
	script := p.LastScript()
	for _, want := range []string{"#SBATCH --nodes=2", "#SBATCH --time=1h0m0s", "--qos=high", "module load parsl", "srun --nodes=2 --ntasks-per-node=4"} {
		if !strings.Contains(script, want) {
			t.Fatalf("script missing %q:\n%s", want, script)
		}
	}
}

func TestSlurmPartitionValidation(t *testing.T) {
	cl, err := cluster.New(cluster.Midway(4))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	p := NewSlurm(cl, Config{NodesPerBlock: 1, Partition: "gpu2"})
	if _, err := p.SubmitBlock(func(Node) (func(), error) { return func() {}, nil }); err == nil {
		t.Fatal("bad partition accepted")
	}
	good := NewSlurm(cl, Config{NodesPerBlock: 1, Partition: "broadwl"})
	if _, err := good.SubmitBlock(func(Node) (func(), error) { return func() {}, nil }); err != nil {
		t.Fatal(err)
	}
}

func TestBatchBlockQueuesWhenFull(t *testing.T) {
	var started, stopped atomic.Int32
	p, _ := newSlurmOnCluster(t, 2, Config{NodesPerBlock: 2})
	id1, err := p.SubmitBlock(countingPayload(&started, &stopped))
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "block1 running", func() bool {
		st, _ := p.Status(id1)
		return st == StatusRunning
	})
	id2, err := p.SubmitBlock(countingPayload(&started, &stopped))
	if err != nil {
		t.Fatal(err)
	}
	st, _ := p.Status(id2)
	if st != StatusPending {
		t.Fatalf("second block status = %v, want pending", st)
	}
	_ = p.CancelBlock(id1)
	waitCond(t, "block2 running", func() bool {
		st, _ := p.Status(id2)
		return st == StatusRunning
	})
}

func TestBatchWalltimeCompletesBlock(t *testing.T) {
	var started, stopped atomic.Int32
	p, _ := newSlurmOnCluster(t, 1, Config{NodesPerBlock: 1, Walltime: 30 * time.Millisecond})
	id, err := p.SubmitBlock(countingPayload(&started, &stopped))
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "walltime completion", func() bool {
		st, _ := p.Status(id)
		return st == StatusCompleted
	})
	waitCond(t, "workers stopped", func() bool { return stopped.Load() == 1 })
}

func TestAllBatchDialects(t *testing.T) {
	cl, err := cluster.New(cluster.Config{Name: "any", Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	makers := map[string]func(*cluster.Cluster, Config) *Batch{
		"slurm": NewSlurm, "torque": NewTorque, "condor": NewCondor,
		"cobalt": NewCobalt, "gridengine": NewGridEngine,
	}
	for name, mk := range makers {
		p := mk(cl, Config{NodesPerBlock: 1})
		if p.Name() != name {
			t.Errorf("provider name = %q, want %q", p.Name(), name)
		}
		var started, stopped atomic.Int32
		id, err := p.SubmitBlock(countingPayload(&started, &stopped))
		if err != nil {
			t.Fatalf("%s submit: %v", name, err)
		}
		waitCond(t, name+" start", func() bool { return started.Load() == 1 })
		if script := p.LastScript(); !strings.Contains(script, dialects[name].directive) {
			t.Errorf("%s script missing directive:\n%s", name, script)
		}
		_ = p.CancelBlock(id)
		waitCond(t, name+" stop", func() bool { return stopped.Load() == 1 })
	}
}

func TestCloudProviderStartupDelay(t *testing.T) {
	var started, stopped atomic.Int32
	p := NewKubernetes(Config{NodesPerBlock: 2})
	p.StartupDelay = 30 * time.Millisecond
	submitAt := time.Now()
	id, err := p.SubmitBlock(countingPayload(&started, &stopped))
	if err != nil {
		t.Fatal(err)
	}
	st, _ := p.Status(id)
	if st != StatusPending {
		t.Fatalf("immediately running; status = %v", st)
	}
	waitCond(t, "instances up", func() bool { return started.Load() == 2 })
	if time.Since(submitAt) < 30*time.Millisecond {
		t.Fatal("startup delay not applied")
	}
	st, _ = p.Status(id)
	if st != StatusRunning {
		t.Fatalf("status = %v", st)
	}
	_ = p.CancelBlock(id)
	waitCond(t, "instances down", func() bool { return stopped.Load() == 2 })
	if p.Instances() != 0 {
		t.Fatalf("instances = %d", p.Instances())
	}
}

func TestCloudCancelBeforeBoot(t *testing.T) {
	var started, stopped atomic.Int32
	p := NewAWS(Config{NodesPerBlock: 4})
	p.StartupDelay = time.Hour
	id, err := p.SubmitBlock(countingPayload(&started, &stopped))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CancelBlock(id); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if started.Load() != 0 {
		t.Fatal("payload ran on cancelled block")
	}
	if p.Instances() != 0 {
		t.Fatalf("instances = %d", p.Instances())
	}
}

func TestCloudQuota(t *testing.T) {
	p := NewGoogleCloud(Config{NodesPerBlock: 3})
	p.InstanceLimit = 5
	p.StartupDelay = 0
	ok := func(Node) (func(), error) { return func() {}, nil }
	if _, err := p.SubmitBlock(ok); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SubmitBlock(ok); !errors.Is(err, ErrQuota) {
		t.Fatalf("err = %v", err)
	}
}

func TestCloudFlavors(t *testing.T) {
	for name, p := range map[string]*Cloud{
		"aws": NewAWS(Config{}), "googlecloud": NewGoogleCloud(Config{}),
		"jetstream": NewJetstream(Config{}), "kubernetes": NewKubernetes(Config{}),
	} {
		if p.Name() != name {
			t.Errorf("flavor %q has name %q", name, p.Name())
		}
	}
}

func TestProviderInterfaceCompliance(t *testing.T) {
	var _ Provider = (*Local)(nil)
	var _ Provider = (*Batch)(nil)
	var _ Provider = (*Cloud)(nil)
}

func TestConcurrentBlockChurn(t *testing.T) {
	p, _ := newSlurmOnCluster(t, 16, Config{NodesPerBlock: 2, Walltime: 40 * time.Millisecond})
	var started, stopped atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.SubmitBlock(countingPayload(&started, &stopped)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	waitCond(t, "all blocks churned", func() bool { return stopped.Load() == 20 })
	if started.Load() != 20 {
		t.Fatalf("started = %d", started.Load())
	}
}
