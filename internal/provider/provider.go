// Package provider implements Parsl's execution-provider abstraction (§4.2):
// a uniform submit/status/cancel interface over vastly different resource
// types. The unit of acquisition is the block (§4.2.3) — one scheduler job
// on a cluster, one API request on a cloud — and elasticity happens in whole
// blocks.
//
// Batch providers (Slurm, Torque/PBS, HTCondor, Cobalt, GridEngine) drive
// the internal/cluster LRM simulator and synthesize real submit scripts
// through the configured launcher. Cloud providers (AWS, GoogleCloud,
// Jetstream, Kubernetes) model instance acquisition with startup latency.
// The Local provider forks "nodes" in-process for laptops.
package provider

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/launcher"
)

// Status is the uniform job state reported by Status, mirroring Parsl's
// JobState.
type Status string

// Provider-visible block states.
const (
	StatusPending   Status = "pending"
	StatusRunning   Status = "running"
	StatusCompleted Status = "completed"
	StatusCancelled Status = "cancelled"
	StatusFailed    Status = "failed"
	StatusUnknown   Status = "unknown"
)

// Node describes one allocated node handed to the executor's payload.
type Node struct {
	ID      int    // provider-scoped node identifier
	Host    string // synthetic hostname
	BlockID string
}

// Payload is what the executor runs on each node of a block (e.g. an HTEX
// manager). It returns a stop function invoked at deallocation, or an error
// if the node could not be brought up.
type Payload func(n Node) (stop func(), err error)

// Provider acquires and releases blocks of resources.
type Provider interface {
	// Name identifies the provider type ("slurm", "aws", ...).
	Name() string
	// NodesPerBlock returns the block size in nodes.
	NodesPerBlock() int
	// SubmitBlock requests one block, launching payload on each node when
	// the block starts. It returns a provider-scoped block id.
	SubmitBlock(payload Payload) (string, error)
	// Status reports the state of a block.
	Status(blockID string) (Status, error)
	// CancelBlock releases a block.
	CancelBlock(blockID string) error
	// Blocks lists known block ids.
	Blocks() []string
}

// ErrNoBlock is returned for unknown block ids.
var ErrNoBlock = errors.New("provider: no such block")

// Config carries the common provider options from Parsl's config object
// (Listing 1): block geometry, scheduler options, and worker environment.
type Config struct {
	NodesPerBlock  int
	WorkersPerNode int
	Walltime       time.Duration
	Partition      string
	SchedulerOpts  string // e.g. extra #SBATCH lines
	WorkerInit     string // e.g. "module load conda"
	Launcher       launcher.Launcher
}

func (c *Config) normalize() {
	if c.NodesPerBlock <= 0 {
		c.NodesPerBlock = 1
	}
	if c.WorkersPerNode <= 0 {
		c.WorkersPerNode = 1
	}
	if c.Launcher == nil {
		c.Launcher = launcher.Single{}
	}
}

// ---------------------------------------------------------------------------
// Local provider
// ---------------------------------------------------------------------------

// Local forks blocks in-process: each "node" is immediately available. It is
// Parsl's LocalProvider (fork) for workstations and laptops.
type Local struct {
	cfg Config

	mu     sync.Mutex
	seq    int
	blocks map[string]*localBlock
}

type localBlock struct {
	status Status
	stops  []func()
}

// NewLocal creates a local provider.
func NewLocal(cfg Config) *Local {
	cfg.normalize()
	return &Local{cfg: cfg, blocks: make(map[string]*localBlock)}
}

// Name implements Provider.
func (l *Local) Name() string { return "local" }

// NodesPerBlock implements Provider.
func (l *Local) NodesPerBlock() int { return l.cfg.NodesPerBlock }

// SubmitBlock implements Provider.
func (l *Local) SubmitBlock(payload Payload) (string, error) {
	l.mu.Lock()
	l.seq++
	id := fmt.Sprintf("local-%d", l.seq)
	blk := &localBlock{status: StatusRunning}
	l.blocks[id] = blk
	l.mu.Unlock()

	for n := 0; n < l.cfg.NodesPerBlock; n++ {
		stop, err := payload(Node{ID: n, Host: fmt.Sprintf("localhost/%s/%d", id, n), BlockID: id})
		if err != nil {
			l.mu.Lock()
			blk.status = StatusFailed
			l.mu.Unlock()
			l.stopBlock(blk)
			return id, fmt.Errorf("provider: local payload: %w", err)
		}
		l.mu.Lock()
		blk.stops = append(blk.stops, stop)
		l.mu.Unlock()
	}
	return id, nil
}

func (l *Local) stopBlock(blk *localBlock) {
	l.mu.Lock()
	stops := blk.stops
	blk.stops = nil
	l.mu.Unlock()
	for _, s := range stops {
		if s != nil {
			s()
		}
	}
}

// Status implements Provider.
func (l *Local) Status(id string) (Status, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	blk, ok := l.blocks[id]
	if !ok {
		return StatusUnknown, fmt.Errorf("%w: %s", ErrNoBlock, id)
	}
	return blk.status, nil
}

// CancelBlock implements Provider.
func (l *Local) CancelBlock(id string) error {
	l.mu.Lock()
	blk, ok := l.blocks[id]
	if ok && blk.status == StatusRunning {
		blk.status = StatusCancelled
	}
	l.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoBlock, id)
	}
	l.stopBlock(blk)
	return nil
}

// Blocks implements Provider.
func (l *Local) Blocks() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.blocks))
	for id := range l.blocks {
		out = append(out, id)
	}
	return out
}

// ---------------------------------------------------------------------------
// Batch (LRM) providers
// ---------------------------------------------------------------------------

// lrmDialect captures the scheduler-specific surface of a batch system.
type lrmDialect struct {
	name      string
	submit    string // sbatch / qsub / condor_submit / ...
	status    string
	cancel    string
	directive string // #SBATCH / #PBS / ...
	partFlag  string
}

var dialects = map[string]lrmDialect{
	"slurm":      {"slurm", "sbatch", "squeue", "scancel", "#SBATCH", "--partition"},
	"torque":     {"torque", "qsub", "qstat", "qdel", "#PBS", "-q"},
	"condor":     {"condor", "condor_submit", "condor_q", "condor_rm", "#CONDOR", "+Queue"},
	"cobalt":     {"cobalt", "qsub", "qstat", "qdel", "#COBALT", "-q"},
	"gridengine": {"gridengine", "qsub", "qstat", "qdel", "#$", "-q"},
}

// Batch drives a simulated LRM with a scheduler dialect.
type Batch struct {
	cfg     Config
	dialect lrmDialect
	cl      *cluster.Cluster

	mu         sync.Mutex
	seq        int
	blocks     map[string]*batchBlock
	lastScript string
}

type batchBlock struct {
	job   *cluster.Job
	stops []func()
}

// NewSlurm creates a Slurm provider over the given simulated cluster.
func NewSlurm(cl *cluster.Cluster, cfg Config) *Batch { return newBatch("slurm", cl, cfg) }

// NewTorque creates a Torque/PBS provider.
func NewTorque(cl *cluster.Cluster, cfg Config) *Batch { return newBatch("torque", cl, cfg) }

// NewCondor creates an HTCondor provider.
func NewCondor(cl *cluster.Cluster, cfg Config) *Batch { return newBatch("condor", cl, cfg) }

// NewCobalt creates a Cobalt provider (the ALCF scheduler).
func NewCobalt(cl *cluster.Cluster, cfg Config) *Batch { return newBatch("cobalt", cl, cfg) }

// NewGridEngine creates a GridEngine provider.
func NewGridEngine(cl *cluster.Cluster, cfg Config) *Batch { return newBatch("gridengine", cl, cfg) }

func newBatch(dialect string, cl *cluster.Cluster, cfg Config) *Batch {
	cfg.normalize()
	return &Batch{cfg: cfg, dialect: dialects[dialect], cl: cl, blocks: make(map[string]*batchBlock)}
}

// Name implements Provider.
func (b *Batch) Name() string { return b.dialect.name }

// NodesPerBlock implements Provider.
func (b *Batch) NodesPerBlock() int { return b.cfg.NodesPerBlock }

// script synthesizes the submit script a real deployment would write. It is
// recorded (LastScript) so configs can be inspected and tested.
func (b *Batch) script(blockID string) string {
	var sb strings.Builder
	sb.WriteString("#!/bin/bash\n")
	fmt.Fprintf(&sb, "%s --job-name=parsl.%s\n", b.dialect.directive, blockID)
	fmt.Fprintf(&sb, "%s --nodes=%d\n", b.dialect.directive, b.cfg.NodesPerBlock)
	if b.cfg.Partition != "" {
		fmt.Fprintf(&sb, "%s %s=%s\n", b.dialect.directive, b.dialect.partFlag, b.cfg.Partition)
	}
	if b.cfg.Walltime > 0 {
		fmt.Fprintf(&sb, "%s --time=%s\n", b.dialect.directive, b.cfg.Walltime)
	}
	if b.cfg.SchedulerOpts != "" {
		fmt.Fprintf(&sb, "%s %s\n", b.dialect.directive, b.cfg.SchedulerOpts)
	}
	if b.cfg.WorkerInit != "" {
		sb.WriteString(b.cfg.WorkerInit + "\n")
	}
	worker := fmt.Sprintf("parsl-worker --block %s", blockID)
	sb.WriteString(b.cfg.Launcher.Wrap(worker, b.cfg.NodesPerBlock, b.cfg.WorkersPerNode) + "\n")
	return sb.String()
}

// LastScript returns the most recently generated submit script.
func (b *Batch) LastScript() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastScript
}

// SubmitBlock implements Provider: it generates the submit script and queues
// one LRM job for the block; the payload starts on each node when the job
// leaves the queue.
func (b *Batch) SubmitBlock(payload Payload) (string, error) {
	b.mu.Lock()
	b.seq++
	id := fmt.Sprintf("%s-block-%d", b.dialect.name, b.seq)
	b.lastScript = b.script(id)
	blk := &batchBlock{}
	b.blocks[id] = blk
	b.mu.Unlock()

	spec := cluster.JobSpec{
		Name:      "parsl." + id,
		Nodes:     b.cfg.NodesPerBlock,
		Walltime:  b.cfg.Walltime,
		Partition: b.cfg.Partition,
		OnStart: func(job *cluster.Job) {
			for i, nodeID := range job.Nodes() {
				stop, err := payload(Node{
					ID:      nodeID,
					Host:    fmt.Sprintf("%s-nid%05d", b.cl.Config().Name, nodeID),
					BlockID: id,
				})
				if err != nil {
					continue // a node that fails to start leaves capacity down
				}
				_ = i
				b.mu.Lock()
				blk.stops = append(blk.stops, stop)
				b.mu.Unlock()
			}
		},
		OnStop: func(job *cluster.Job, reason cluster.StopReason) {
			b.mu.Lock()
			stops := blk.stops
			blk.stops = nil
			b.mu.Unlock()
			for _, s := range stops {
				if s != nil {
					s()
				}
			}
		},
	}
	job, err := b.cl.Submit(spec)
	if err != nil {
		b.mu.Lock()
		delete(b.blocks, id)
		b.mu.Unlock()
		return "", fmt.Errorf("provider: %s %s: %w", b.dialect.submit, id, err)
	}
	b.mu.Lock()
	blk.job = job
	b.mu.Unlock()
	return id, nil
}

// Status implements Provider, translating LRM job states.
func (b *Batch) Status(id string) (Status, error) {
	b.mu.Lock()
	blk, ok := b.blocks[id]
	b.mu.Unlock()
	if !ok || blk.job == nil {
		return StatusUnknown, fmt.Errorf("%w: %s", ErrNoBlock, id)
	}
	switch blk.job.State() {
	case cluster.Queued:
		return StatusPending, nil
	case cluster.Running:
		return StatusRunning, nil
	case cluster.Completed:
		return StatusCompleted, nil
	case cluster.Cancelled:
		return StatusCancelled, nil
	case cluster.Failed:
		return StatusFailed, nil
	default:
		return StatusUnknown, nil
	}
}

// CancelBlock implements Provider (scancel and friends).
func (b *Batch) CancelBlock(id string) error {
	b.mu.Lock()
	blk, ok := b.blocks[id]
	b.mu.Unlock()
	if !ok || blk.job == nil {
		return fmt.Errorf("%w: %s", ErrNoBlock, id)
	}
	return b.cl.Cancel(blk.job.ID)
}

// Blocks implements Provider.
func (b *Batch) Blocks() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.blocks))
	for id := range b.blocks {
		out = append(out, id)
	}
	return out
}

// ---------------------------------------------------------------------------
// Cloud providers
// ---------------------------------------------------------------------------

// Cloud models instance-based acquisition: one block = one API request for
// NodesPerBlock instances, each becoming available after StartupDelay (VM
// boot / container pull time).
type Cloud struct {
	cfg Config
	// provider flavor
	flavor string
	// StartupDelay models instance boot time.
	StartupDelay time.Duration
	// InstanceLimit caps total instances (account quota); 0 = unlimited.
	InstanceLimit int

	mu        sync.Mutex
	seq       int
	instances int
	blocks    map[string]*cloudBlock
}

type cloudBlock struct {
	status Status
	stops  []func()
	cancel chan struct{}
}

// NewAWS models EC2 spot/on-demand instances.
func NewAWS(cfg Config) *Cloud { return newCloud("aws", cfg, 800*time.Millisecond) }

// NewGoogleCloud models GCE instances.
func NewGoogleCloud(cfg Config) *Cloud { return newCloud("googlecloud", cfg, 700*time.Millisecond) }

// NewJetstream models Jetstream (OpenStack) instances.
func NewJetstream(cfg Config) *Cloud { return newCloud("jetstream", cfg, 900*time.Millisecond) }

// NewKubernetes models pod scheduling (fast startup).
func NewKubernetes(cfg Config) *Cloud { return newCloud("kubernetes", cfg, 100*time.Millisecond) }

func newCloud(flavor string, cfg Config, delay time.Duration) *Cloud {
	cfg.normalize()
	return &Cloud{cfg: cfg, flavor: flavor, StartupDelay: delay, blocks: make(map[string]*cloudBlock)}
}

// Name implements Provider.
func (c *Cloud) Name() string { return c.flavor }

// NodesPerBlock implements Provider.
func (c *Cloud) NodesPerBlock() int { return c.cfg.NodesPerBlock }

// ErrQuota is returned when the instance limit would be exceeded.
var ErrQuota = errors.New("provider: instance quota exceeded")

// SubmitBlock implements Provider.
func (c *Cloud) SubmitBlock(payload Payload) (string, error) {
	c.mu.Lock()
	if c.InstanceLimit > 0 && c.instances+c.cfg.NodesPerBlock > c.InstanceLimit {
		c.mu.Unlock()
		return "", fmt.Errorf("%w: %d + %d > %d", ErrQuota, c.instances, c.cfg.NodesPerBlock, c.InstanceLimit)
	}
	c.seq++
	c.instances += c.cfg.NodesPerBlock
	id := fmt.Sprintf("%s-block-%d", c.flavor, c.seq)
	blk := &cloudBlock{status: StatusPending, cancel: make(chan struct{})}
	c.blocks[id] = blk
	c.mu.Unlock()

	go func() {
		select {
		case <-time.After(c.StartupDelay):
		case <-blk.cancel:
			return
		}
		c.mu.Lock()
		if blk.status != StatusPending {
			c.mu.Unlock()
			return
		}
		blk.status = StatusRunning
		c.mu.Unlock()
		for n := 0; n < c.cfg.NodesPerBlock; n++ {
			stop, err := payload(Node{ID: n, Host: fmt.Sprintf("%s/%s/vm%d", c.flavor, id, n), BlockID: id})
			if err != nil {
				continue
			}
			c.mu.Lock()
			blk.stops = append(blk.stops, stop)
			c.mu.Unlock()
		}
	}()
	return id, nil
}

// Status implements Provider.
func (c *Cloud) Status(id string) (Status, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	blk, ok := c.blocks[id]
	if !ok {
		return StatusUnknown, fmt.Errorf("%w: %s", ErrNoBlock, id)
	}
	return blk.status, nil
}

// CancelBlock implements Provider: terminate instances.
func (c *Cloud) CancelBlock(id string) error {
	c.mu.Lock()
	blk, ok := c.blocks[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoBlock, id)
	}
	prev := blk.status
	blk.status = StatusCancelled
	stops := blk.stops
	blk.stops = nil
	c.instances -= c.cfg.NodesPerBlock
	c.mu.Unlock()

	if prev == StatusPending {
		close(blk.cancel)
	}
	for _, s := range stops {
		if s != nil {
			s()
		}
	}
	return nil
}

// Blocks implements Provider.
func (c *Cloud) Blocks() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.blocks))
	for id := range c.blocks {
		out = append(out, id)
	}
	return out
}

// Instances returns the live instance count (for quota tests).
func (c *Cloud) Instances() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.instances
}
