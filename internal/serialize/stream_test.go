package serialize

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// collect returns a send func that appends a copy of each frame (the codec
// only guarantees the bytes during send, exactly like a transport write).
func collect(frames *[][]byte) func([]byte) error {
	return func(b []byte) error {
		cp := make([]byte, len(b))
		copy(cp, b)
		*frames = append(*frames, cp)
		return nil
	}
}

func mkTaskBatch(r *rand.Rand, n int) []WireTask {
	batch := make([]WireTask, n)
	for i := range batch {
		args := []any{r.Int(), fmt.Sprintf("arg-%d", r.Intn(1000)), r.Float64()}
		kw := map[string]any{"k": r.Intn(10), "mode": "m"}
		p, err := EncodeArgs(args, kw)
		if err != nil {
			panic(err)
		}
		m := TaskMsg{ID: r.Int63(), App: "app", Priority: r.Intn(5)}
		m.AttachPayload(p)
		w, err := m.Wire()
		if err != nil {
			panic(err)
		}
		batch[i] = w
	}
	return batch
}

func mkResultBatch(r *rand.Rand, n int) []ResultMsg {
	batch := make([]ResultMsg, n)
	for i := range batch {
		batch[i] = ResultMsg{
			ID: r.Int63(), Value: r.Intn(1 << 20),
			WorkerID: fmt.Sprintf("w%d", r.Intn(8)),
		}
		if r.Intn(4) == 0 {
			batch[i].Err = "boom"
		}
	}
	return batch
}

// TestStreamRoundTripTaskAndResultBatches drives many randomly sized task
// and result batches through one persistent encoder/decoder pair and checks
// every batch survives byte-identical (args included).
func TestStreamRoundTripTaskAndResultBatches(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	enc := NewStreamEncoder()
	dec := NewStreamDecoder()
	for round := 0; round < 50; round++ {
		if round%2 == 0 {
			in := mkTaskBatch(r, 1+r.Intn(8))
			var frames [][]byte
			if err := enc.EncodeFrame(in, collect(&frames)); err != nil {
				t.Fatal(err)
			}
			var out []WireTask
			if err := dec.DecodeFrame(frames[0], &out); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if !reflect.DeepEqual(in, out) {
				t.Fatalf("round %d: task batch mutated in transit", round)
			}
			// The payload must decode to executable args on the far side.
			got, err := out[0].Task()
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Args) != 3 || got.Kwargs["mode"] != "m" {
				t.Fatalf("args lost: %+v", got)
			}
		} else {
			in := mkResultBatch(r, 1+r.Intn(8))
			var frames [][]byte
			if err := enc.EncodeFrame(in, collect(&frames)); err != nil {
				t.Fatal(err)
			}
			var out []ResultMsg
			if err := dec.DecodeFrame(frames[0], &out); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if !reflect.DeepEqual(in, out) {
				t.Fatalf("round %d: result batch mutated in transit", round)
			}
		}
	}
}

// TestStreamAmortizesTypeDescriptors pins the point of streaming: after the
// first frame ships the gob type descriptors, steady-state frames of the
// same shape are strictly smaller than the one-shot framing of the same
// value.
func TestStreamAmortizesTypeDescriptors(t *testing.T) {
	batch := mkResultBatch(rand.New(rand.NewSource(2)), 4)
	enc := NewStreamEncoder()
	var frames [][]byte
	for i := 0; i < 3; i++ {
		if err := enc.EncodeFrame(batch, collect(&frames)); err != nil {
			t.Fatal(err)
		}
	}
	var oneShot [][]byte
	if err := (OneShotCodec{}).EncodeFrame(batch, collect(&oneShot)); err != nil {
		t.Fatal(err)
	}
	if len(frames[1]) >= len(frames[0]) {
		t.Fatalf("second stream frame (%dB) not smaller than first (%dB)", len(frames[1]), len(frames[0]))
	}
	if len(frames[2]) >= len(oneShot[0]) {
		t.Fatalf("steady-state stream frame (%dB) not smaller than one-shot (%dB)", len(frames[2]), len(oneShot[0]))
	}
}

// TestStreamDecoderResyncsOnNewEpoch models the reconnect path: a sender
// resets (fresh epoch, self-describing first frame) and the same decoder
// picks the new stream up without external coordination.
func TestStreamDecoderResyncsOnNewEpoch(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	enc := NewStreamEncoder()
	dec := NewStreamDecoder()

	var frames [][]byte
	a := mkResultBatch(r, 3)
	if err := enc.EncodeFrame(a, collect(&frames)); err != nil {
		t.Fatal(err)
	}
	var out []ResultMsg
	if err := dec.DecodeFrame(frames[0], &out); err != nil {
		t.Fatal(err)
	}

	// "Reconnect": the sender restarts its stream.
	enc.Reset()
	frames = nil
	b := mkResultBatch(r, 2)
	if err := enc.EncodeFrame(b, collect(&frames)); err != nil {
		t.Fatal(err)
	}
	out = nil
	if err := dec.DecodeFrame(frames[0], &out); err != nil {
		t.Fatalf("decoder did not resync on new epoch: %v", err)
	}
	if !reflect.DeepEqual(b, out) {
		t.Fatal("post-reset batch mutated in transit")
	}
}

// TestStreamDecoderJoinsFreshStreamOnly is the other half of the reconnect
// story: a receiver that appears mid-stream (fresh decoder, old epoch
// already past its first frame) must reject frames rather than misdecode,
// and must recover the moment the sender starts a new epoch.
func TestStreamDecoderJoinsFreshStreamOnly(t *testing.T) {
	enc := NewStreamEncoder()
	batch := mkResultBatch(rand.New(rand.NewSource(4)), 3)
	var frames [][]byte
	for i := 0; i < 3; i++ {
		if err := enc.EncodeFrame(batch, collect(&frames)); err != nil {
			t.Fatal(err)
		}
	}
	late := NewStreamDecoder()
	var out []ResultMsg
	if err := late.DecodeFrame(frames[2], &out); err == nil {
		t.Fatal("mid-stream join decoded successfully; descriptors were missing")
	}
	// Sender resets — the late receiver must sync on the fresh stream.
	enc.Reset()
	frames = nil
	if err := enc.EncodeFrame(batch, collect(&frames)); err != nil {
		t.Fatal(err)
	}
	out = nil
	if err := late.DecodeFrame(frames[0], &out); err != nil {
		t.Fatalf("late receiver did not recover on fresh epoch: %v", err)
	}
	if !reflect.DeepEqual(batch, out) {
		t.Fatal("recovered batch mutated")
	}
}

// TestOneShotFramesInterleaveWithStream checks mixed traffic: one-shot
// frames decode standalone at any point without disturbing the persistent
// stream's state.
func TestOneShotFramesInterleaveWithStream(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	enc := NewStreamEncoder()
	dec := NewStreamDecoder()
	for i := 0; i < 10; i++ {
		in := mkResultBatch(r, 2)
		var frames [][]byte
		var err error
		if i%3 == 2 {
			err = (OneShotCodec{}).EncodeFrame(in, collect(&frames))
		} else {
			err = enc.EncodeFrame(in, collect(&frames))
		}
		if err != nil {
			t.Fatal(err)
		}
		var out []ResultMsg
		if err := dec.DecodeFrame(frames[0], &out); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("frame %d mutated", i)
		}
	}
}

// TestStreamConcurrentEncodes hammers one StreamEncoder from many
// goroutines. The encoder's contract is that encode+send are atomic, so the
// frames — decoded in send order by one decoder — must yield every message
// exactly once, uncorrupted.
func TestStreamConcurrentEncodes(t *testing.T) {
	const workers, perWorker = 8, 50
	enc := NewStreamEncoder()
	var mu sync.Mutex
	var frames [][]byte
	send := func(b []byte) error {
		// Caller already holds the encoder lock; mu only guards the slice
		// against a hypothetical future in which send runs unlocked.
		mu.Lock()
		defer mu.Unlock()
		cp := make([]byte, len(b))
		copy(cp, b)
		frames = append(frames, cp)
		return nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				batch := []ResultMsg{{ID: int64(w*perWorker + i), WorkerID: fmt.Sprintf("w%d", w)}}
				if err := enc.EncodeFrame(batch, send); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	dec := NewStreamDecoder()
	seen := make(map[int64]bool)
	for i, f := range frames {
		var out []ResultMsg
		if err := dec.DecodeFrame(f, &out); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(out) != 1 || seen[out[0].ID] {
			t.Fatalf("frame %d: bad or duplicate message %+v", i, out)
		}
		seen[out[0].ID] = true
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("recovered %d messages, want %d", len(seen), workers*perWorker)
	}
}

// TestStreamDecodeRejectsGarbage covers the decoder's failure modes: short
// frames, unknown tags, and corrupt stream bodies.
func TestStreamDecodeRejectsGarbage(t *testing.T) {
	dec := NewStreamDecoder()
	var v []ResultMsg
	if err := dec.DecodeFrame([]byte{1, 2}, &v); err == nil {
		t.Fatal("short frame decoded")
	}
	if err := dec.DecodeFrame([]byte{0x7f, 0, 0, 0, 1, 9, 9}, &v); err == nil {
		t.Fatal("unknown tag decoded")
	}
	if err := dec.DecodeFrame([]byte{0x01, 0, 0, 0, 1, 0xff, 0xfe, 0xfd}, &v); err == nil {
		t.Fatal("corrupt stream body decoded")
	}
	// The decoder must still work once real frames arrive.
	enc := NewStreamEncoder()
	in := []ResultMsg{{ID: 1}}
	var frames [][]byte
	if err := enc.EncodeFrame(in, collect(&frames)); err != nil {
		t.Fatal(err)
	}
	if err := dec.DecodeFrame(frames[0], &v); err != nil {
		t.Fatalf("decoder did not recover after garbage: %v", err)
	}
}

// TestStreamEncoderSurvivesUnencodableValue: a poison value must neither
// kill the encoder nor desync subsequent frames (the retry-on-fresh-stream
// fallback).
func TestStreamEncoderSurvivesUnencodableValue(t *testing.T) {
	enc := NewStreamEncoder()
	dec := NewStreamDecoder()
	var frames [][]byte
	if err := enc.EncodeFrame([]ResultMsg{{ID: 1}}, collect(&frames)); err != nil {
		t.Fatal(err)
	}
	if err := enc.EncodeFrame(make(chan int), collect(&frames)); err == nil {
		t.Fatal("channel encoded")
	}
	if err := enc.EncodeFrame([]ResultMsg{{ID: 2}}, collect(&frames)); err != nil {
		t.Fatal(err)
	}
	var out []ResultMsg
	for i, f := range frames {
		out = nil
		if err := dec.DecodeFrame(f, &out); err != nil {
			t.Fatalf("frame %d after poison: %v", i, err)
		}
	}
	if out[0].ID != 2 {
		t.Fatalf("post-poison frame decoded to %+v", out)
	}
}

// Property: any (ids × values) batch round-trips the streaming codec
// losslessly, regardless of batch size or how many frames preceded it.
func TestQuickStreamRoundTrip(t *testing.T) {
	enc := NewStreamEncoder()
	dec := NewStreamDecoder()
	prop := func(ids []int64, val int, errStr string) bool {
		in := make([]ResultMsg, len(ids))
		for i, id := range ids {
			in[i] = ResultMsg{ID: id, Value: val, Err: errStr}
		}
		var frames [][]byte
		if err := enc.EncodeFrame(in, collect(&frames)); err != nil {
			return false
		}
		var out []ResultMsg
		if err := dec.DecodeFrame(frames[0], &out); err != nil {
			return false
		}
		if len(in) == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFrameChecksumDetectsEveryByteFlip is the integrity property the chaos
// plane depends on: a frame with any single body byte flipped must fail
// DecodeFrame — never decode silently into wrong data. (Before the CRC-32C
// header field, a flipped byte inside a gob-encoded integer could decode
// "successfully" and deliver a wrong task result; chaos seed 4 caught it.)
func TestFrameChecksumDetectsEveryByteFlip(t *testing.T) {
	enc := NewStreamEncoder()
	var frames [][]byte
	in := []ResultMsg{{ID: 77, Value: 12345, WorkerID: "w"}}
	if err := enc.EncodeFrame(in, collect(&frames)); err != nil {
		t.Fatal(err)
	}
	frame := frames[0]
	for i := range frame {
		cp := append([]byte(nil), frame...)
		cp[i] ^= 0xA5
		dec := NewStreamDecoder()
		var out []ResultMsg
		if err := dec.DecodeFrame(cp, &out); err == nil {
			t.Fatalf("flip of byte %d decoded silently to %+v", i, out)
		}
	}
	// And every truncation.
	for n := 0; n < len(frame); n++ {
		dec := NewStreamDecoder()
		var out []ResultMsg
		if err := dec.DecodeFrame(frame[:n], &out); err == nil {
			t.Fatalf("truncation to %d bytes decoded silently", n)
		}
	}
	// The pristine frame still decodes.
	dec := NewStreamDecoder()
	var out []ResultMsg
	if err := dec.DecodeFrame(frame, &out); err != nil || out[0].ID != 77 {
		t.Fatalf("pristine frame: %v %+v", err, out)
	}
}

// TestOneShotChecksum: the one-shot framing carries the same integrity
// guarantee.
func TestOneShotChecksum(t *testing.T) {
	var frames [][]byte
	if err := (OneShotCodec{}).EncodeFrame([]ResultMsg{{ID: 9}}, collect(&frames)); err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), frames[0]...)
	frame[len(frame)-1] ^= 0x01
	var out []ResultMsg
	if err := NewStreamDecoder().DecodeFrame(frame, &out); err == nil {
		t.Fatal("corrupted one-shot frame decoded")
	}
	var ok []ResultMsg
	if err := NewStreamDecoder().DecodeFrame(frames[0], &ok); err != nil || ok[0].ID != 9 {
		t.Fatalf("pristine one-shot: %v %+v", err, ok)
	}
}
