package serialize

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	fn := func(args []any, kwargs map[string]any) (any, error) { return "ok", nil }
	if err := r.Register("hello", fn); err != nil {
		t.Fatal(err)
	}
	e, ok := r.Lookup("hello")
	if !ok {
		t.Fatal("lookup failed")
	}
	v, err := e.Fn(nil, nil)
	if err != nil || v != "ok" {
		t.Fatalf("fn: %v %v", v, err)
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Fatal("lookup of missing app succeeded")
	}
}

func TestRegistryRejectsDuplicatesAndInvalid(t *testing.T) {
	r := NewRegistry()
	fn := func([]any, map[string]any) (any, error) { return nil, nil }
	if err := r.Register("a", fn); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("a", fn); err == nil {
		t.Fatal("duplicate registration allowed")
	}
	if err := r.Register("", fn); err == nil {
		t.Fatal("empty name allowed")
	}
	if err := r.Register("b", nil); err == nil {
		t.Fatal("nil fn allowed")
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	fn := func([]any, map[string]any) (any, error) { return nil, nil }
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := r.Register(n, fn); err != nil {
			t.Fatal(err)
		}
	}
	names := r.Names()
	if strings.Join(names, ",") != "alpha,mid,zeta" {
		t.Fatalf("names = %v", names)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	fn := func([]any, map[string]any) (any, error) { return nil, nil }
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = r.Register(strings.Repeat("x", i+1), fn)
			r.Lookup("x")
			r.Names()
		}(i)
	}
	wg.Wait()
	if len(r.Names()) != 50 {
		t.Fatalf("got %d names", len(r.Names()))
	}
}

func TestBodyHashDependsOnNameAndVersion(t *testing.T) {
	a := Entry{Name: "f", Version: "v1"}
	b := Entry{Name: "f", Version: "v2"}
	c := Entry{Name: "g", Version: "v1"}
	if a.BodyHash() == b.BodyHash() {
		t.Fatal("version change did not change hash")
	}
	if a.BodyHash() == c.BodyHash() {
		t.Fatal("name change did not change hash")
	}
	if a.BodyHash() != (Entry{Name: "f", Version: "v1"}).BodyHash() {
		t.Fatal("hash not deterministic")
	}
}

func TestTaskRoundTrip(t *testing.T) {
	m := TaskMsg{
		ID:     42,
		App:    "align",
		Args:   []any{"chr1", 3, 2.5, []string{"a", "b"}},
		Kwargs: map[string]any{"threads": 4},
	}
	b, err := EncodeTask(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTask(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 42 || got.App != "align" || len(got.Args) != 4 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Args[0] != "chr1" || got.Args[1] != 3 || got.Args[2] != 2.5 {
		t.Fatalf("args = %v", got.Args)
	}
	if got.Kwargs["threads"] != 4 {
		t.Fatalf("kwargs = %v", got.Kwargs)
	}
}

func TestResultRoundTrip(t *testing.T) {
	m := ResultMsg{ID: 7, Value: "done", Err: "", WorkerID: "w3"}
	b, err := EncodeResult(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip: %+v != %+v", got, m)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeTask([]byte("garbage")); err == nil {
		t.Fatal("garbage decoded as task")
	}
	if _, err := DecodeResult([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage decoded as result")
	}
}

func TestDeepCopyArgsIsolation(t *testing.T) {
	orig := []any{[]string{"a", "b"}}
	kw := map[string]any{"list": []int{1, 2, 3}}
	cargs, ckw, err := DeepCopyArgs(orig, kw)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the copies; originals must be untouched.
	cargs[0].([]string)[0] = "MUTATED"
	ckw["list"].([]int)[0] = 999
	if orig[0].([]string)[0] != "a" {
		t.Fatal("arg mutation leaked to original")
	}
	if kw["list"].([]int)[0] != 1 {
		t.Fatal("kwarg mutation leaked to original")
	}
}

func TestDeepCopyUnencodable(t *testing.T) {
	if _, _, err := DeepCopyArgs([]any{make(chan int)}, nil); err == nil {
		t.Fatal("channel arg encoded")
	}
}

func TestArgsHashDeterministicAcrossKwargOrder(t *testing.T) {
	// Build the same map twice with different insertion orders.
	kw1 := map[string]any{}
	kw2 := map[string]any{}
	keys := []string{"a", "b", "c", "d", "e"}
	for _, k := range keys {
		kw1[k] = k + "-v"
	}
	for i := len(keys) - 1; i >= 0; i-- {
		kw2[keys[i]] = keys[i] + "-v"
	}
	h1, err := ArgsHash([]any{1, "x"}, kw1)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := ArgsHash([]any{1, "x"}, kw2)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash differs across map order: %s %s", h1, h2)
	}
}

func TestArgsHashDistinguishesArgs(t *testing.T) {
	h1, _ := ArgsHash([]any{1}, nil)
	h2, _ := ArgsHash([]any{2}, nil)
	h3, _ := ArgsHash([]any{1, 0}, nil)
	if h1 == h2 || h1 == h3 {
		t.Fatalf("collisions: %s %s %s", h1, h2, h3)
	}
}

func TestArgsHashErrorOnUnencodable(t *testing.T) {
	if _, err := ArgsHash([]any{func() {}}, nil); err == nil {
		t.Fatal("func arg hashed")
	}
}

// Property: encode/decode is lossless for int/string/float payloads.
func TestQuickTaskRoundTrip(t *testing.T) {
	prop := func(id int64, app string, i int, s string, f float64) bool {
		m := TaskMsg{ID: id, App: app, Args: []any{i, s, f}}
		b, err := EncodeTask(m)
		if err != nil {
			return false
		}
		got, err := DecodeTask(b)
		if err != nil {
			return false
		}
		return got.ID == id && got.App == app &&
			got.Args[0] == i && got.Args[1] == s && got.Args[2] == f
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ArgsHash is a pure function of its inputs.
func TestQuickArgsHashPure(t *testing.T) {
	prop := func(a int, b string) bool {
		h1, e1 := ArgsHash([]any{a, b}, map[string]any{"k": a})
		h2, e2 := ArgsHash([]any{a, b}, map[string]any{"k": a})
		return e1 == nil && e2 == nil && h1 == h2
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterIfAbsent(t *testing.T) {
	r := NewRegistry()
	calls := 0
	first := func([]any, map[string]any) (any, error) { calls++; return "first", nil }
	second := func([]any, map[string]any) (any, error) { return "second", nil }
	if err := r.RegisterIfAbsent("app", first); err != nil {
		t.Fatal(err)
	}
	// Second registration is a silent no-op; the first function wins.
	if err := r.RegisterIfAbsent("app", second); err != nil {
		t.Fatal(err)
	}
	e, ok := r.Lookup("app")
	if !ok {
		t.Fatal("entry missing")
	}
	if v, _ := e.Fn(nil, nil); v != "first" {
		t.Fatalf("fn = %v, want the first registration", v)
	}
	if err := r.RegisterIfAbsent("", first); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := r.RegisterIfAbsent("x", nil); err == nil {
		t.Fatal("nil fn accepted")
	}
}

func TestRegisterIfAbsentConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = r.RegisterIfAbsent("shared", func([]any, map[string]any) (any, error) {
				return nil, nil
			})
		}()
	}
	wg.Wait()
	if _, ok := r.Lookup("shared"); !ok {
		t.Fatal("entry missing after concurrent registration")
	}
}
