package serialize

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	fn := func(args []any, kwargs map[string]any) (any, error) { return "ok", nil }
	if err := r.Register("hello", fn); err != nil {
		t.Fatal(err)
	}
	e, ok := r.Lookup("hello")
	if !ok {
		t.Fatal("lookup failed")
	}
	v, err := e.Fn(nil, nil)
	if err != nil || v != "ok" {
		t.Fatalf("fn: %v %v", v, err)
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Fatal("lookup of missing app succeeded")
	}
}

func TestRegistryRejectsDuplicatesAndInvalid(t *testing.T) {
	r := NewRegistry()
	fn := func([]any, map[string]any) (any, error) { return nil, nil }
	if err := r.Register("a", fn); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("a", fn); err == nil {
		t.Fatal("duplicate registration allowed")
	}
	if err := r.Register("", fn); err == nil {
		t.Fatal("empty name allowed")
	}
	if err := r.Register("b", nil); err == nil {
		t.Fatal("nil fn allowed")
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	fn := func([]any, map[string]any) (any, error) { return nil, nil }
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := r.Register(n, fn); err != nil {
			t.Fatal(err)
		}
	}
	names := r.Names()
	if strings.Join(names, ",") != "alpha,mid,zeta" {
		t.Fatalf("names = %v", names)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	fn := func([]any, map[string]any) (any, error) { return nil, nil }
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = r.Register(strings.Repeat("x", i+1), fn)
			r.Lookup("x")
			r.Names()
		}(i)
	}
	wg.Wait()
	if len(r.Names()) != 50 {
		t.Fatalf("got %d names", len(r.Names()))
	}
}

func TestBodyHashDependsOnNameAndVersion(t *testing.T) {
	a := Entry{Name: "f", Version: "v1"}
	b := Entry{Name: "f", Version: "v2"}
	c := Entry{Name: "g", Version: "v1"}
	if a.BodyHash() == b.BodyHash() {
		t.Fatal("version change did not change hash")
	}
	if a.BodyHash() == c.BodyHash() {
		t.Fatal("name change did not change hash")
	}
	if a.BodyHash() != (Entry{Name: "f", Version: "v1"}).BodyHash() {
		t.Fatal("hash not deterministic")
	}
}

func TestTaskRoundTrip(t *testing.T) {
	m := TaskMsg{
		ID:     42,
		App:    "align",
		Args:   []any{"chr1", 3, 2.5, []string{"a", "b"}},
		Kwargs: map[string]any{"threads": 4},
	}
	b, err := EncodeTask(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTask(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 42 || got.App != "align" || len(got.Args) != 4 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Args[0] != "chr1" || got.Args[1] != 3 || got.Args[2] != 2.5 {
		t.Fatalf("args = %v", got.Args)
	}
	if got.Kwargs["threads"] != 4 {
		t.Fatalf("kwargs = %v", got.Kwargs)
	}
}

func TestResultRoundTrip(t *testing.T) {
	m := ResultMsg{ID: 7, Value: "done", Err: "", WorkerID: "w3"}
	b, err := EncodeResult(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip: %+v != %+v", got, m)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeTask([]byte("garbage")); err == nil {
		t.Fatal("garbage decoded as task")
	}
	if _, err := DecodeResult([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage decoded as result")
	}
}

func TestDeepCopyArgsIsolation(t *testing.T) {
	orig := []any{[]string{"a", "b"}}
	kw := map[string]any{"list": []int{1, 2, 3}}
	cargs, ckw, err := DeepCopyArgs(orig, kw)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the copies; originals must be untouched.
	cargs[0].([]string)[0] = "MUTATED"
	ckw["list"].([]int)[0] = 999
	if orig[0].([]string)[0] != "a" {
		t.Fatal("arg mutation leaked to original")
	}
	if kw["list"].([]int)[0] != 1 {
		t.Fatal("kwarg mutation leaked to original")
	}
}

func TestDeepCopyUnencodable(t *testing.T) {
	if _, _, err := DeepCopyArgs([]any{make(chan int)}, nil); err == nil {
		t.Fatal("channel arg encoded")
	}
}

func TestArgsHashDeterministicAcrossKwargOrder(t *testing.T) {
	// Build the same map twice with different insertion orders.
	kw1 := map[string]any{}
	kw2 := map[string]any{}
	keys := []string{"a", "b", "c", "d", "e"}
	for _, k := range keys {
		kw1[k] = k + "-v"
	}
	for i := len(keys) - 1; i >= 0; i-- {
		kw2[keys[i]] = keys[i] + "-v"
	}
	h1, err := ArgsHash([]any{1, "x"}, kw1)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := ArgsHash([]any{1, "x"}, kw2)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash differs across map order: %s %s", h1, h2)
	}
}

func TestArgsHashDistinguishesArgs(t *testing.T) {
	h1, _ := ArgsHash([]any{1}, nil)
	h2, _ := ArgsHash([]any{2}, nil)
	h3, _ := ArgsHash([]any{1, 0}, nil)
	if h1 == h2 || h1 == h3 {
		t.Fatalf("collisions: %s %s %s", h1, h2, h3)
	}
}

func TestArgsHashErrorOnUnencodable(t *testing.T) {
	if _, err := ArgsHash([]any{func() {}}, nil); err == nil {
		t.Fatal("func arg hashed")
	}
}

// Property: encode/decode is lossless for int/string/float payloads.
func TestQuickTaskRoundTrip(t *testing.T) {
	prop := func(id int64, app string, i int, s string, f float64) bool {
		m := TaskMsg{ID: id, App: app, Args: []any{i, s, f}}
		b, err := EncodeTask(m)
		if err != nil {
			return false
		}
		got, err := DecodeTask(b)
		if err != nil {
			return false
		}
		return got.ID == id && got.App == app &&
			got.Args[0] == i && got.Args[1] == s && got.Args[2] == f
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ArgsHash is a pure function of its inputs.
func TestQuickArgsHashPure(t *testing.T) {
	prop := func(a int, b string) bool {
		h1, e1 := ArgsHash([]any{a, b}, map[string]any{"k": a})
		h2, e2 := ArgsHash([]any{a, b}, map[string]any{"k": a})
		return e1 == nil && e2 == nil && h1 == h2
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestArgsHashGolden pins the digest for a spread of argument shapes.
// Checkpoint files persist memo keys built from these hashes, so the values
// must never drift across releases — including across the rewrite that
// streams gob output straight into the hasher (the per-argument byte
// streams, and therefore the digests, are unchanged).
func TestArgsHashGolden(t *testing.T) {
	cases := []struct {
		args []any
		kw   map[string]any
		want string
	}{
		{nil, nil, "cbf29ce484222325"},
		{[]any{}, map[string]any{}, "cbf29ce484222325"},
		{[]any{int(42)}, nil, "8e76be993c2fd62b"},
		{[]any{"chr1", 3, 2.5}, nil, "af96601ca0f65dde"},
		{[]any{[]string{"a", "b"}, []int{1, 2, 3}}, nil, "3cc28995c38ba0fb"},
		{[]any{1, "x"}, map[string]any{"a": "a-v", "b": "b-v", "c": "c-v"}, "fab4c8683b8ba743"},
		{[]any{int64(7)}, map[string]any{"threads": 4, "mode": "fast"}, "b94a793ba1fd6355"},
		{[]any{[]byte{0, 1, 2}}, map[string]any{"f": 3.14}, "1b69d6eeb0dd3f21"},
	}
	for i, c := range cases {
		got, err := ArgsHash(c.args, c.kw)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.want {
			t.Fatalf("case %d: ArgsHash = %s, want golden %s", i, got, c.want)
		}
	}
}

// TestPayloadHashGolden pins the payload digest — the args component of
// every memoization key the DFK computes — for a spread of argument shapes
// across the whole value-codec tag set. Checkpoint files persist these, so
// the values must never drift; a change here means every existing
// checkpoint goes cold (if that is ever intended, bump payloadVersion and
// regenerate).
func TestPayloadHashGolden(t *testing.T) {
	cases := []struct {
		args []any
		kw   map[string]any
		want string
	}{
		{nil, nil, "d0a397186727310c"},
		{[]any{int(42)}, nil, "5ea12fb6efd94a88"},
		{[]any{"chr1", 3, 2.5}, nil, "a766a3dadf2f1481"},
		{[]any{[]string{"a", "b"}, []int{1, 2, 3}}, nil, "a72ecdb561b6d449"},
		{[]any{1, "x"}, map[string]any{"a": "a-v", "b": "b-v", "c": "c-v"}, "9048989477f80b9a"},
		{[]any{int64(7), true, nil}, map[string]any{"threads": 4, "mode": "fast"}, "6007252735e5e249"},
		{[]any{[]byte{0, 1, 2}, []float64{1.5}}, map[string]any{"f": 3.14}, "512f6b90b95ea80b"},
		{[]any{[]any{1, "nested"}, map[string]string{"k": "v"}}, nil, "e9a96da6a538c1f4"},
	}
	for i, c := range cases {
		p, err := EncodeArgs(c.args, c.kw)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := p.ArgsHash(); got != c.want {
			t.Fatalf("case %d: payload hash = %s, want golden %s", i, got, c.want)
		}
	}
}

// TestPayloadRoundTripAllTags round-trips a value of every fast-path tag
// plus a gob-fallback struct, checking type and value fidelity.
func TestPayloadRoundTripAllTags(t *testing.T) {
	type custom struct{ N int }
	RegisterType(custom{})
	args := []any{
		nil, true, false, int(-3), int64(1 << 40), 2.5, "s",
		[]byte{1, 2}, []string{"a"}, []int{-1, 2}, []float64{0.5},
		[]any{1, "in", nil}, custom{N: 9},
	}
	kw := map[string]any{
		"m":  map[string]any{"x": 1},
		"ss": map[string]string{"k": "v"},
	}
	p, err := EncodeArgs(args, kw)
	if err != nil {
		t.Fatal(err)
	}
	gotArgs, gotKw, err := p.DecodeArgs()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotArgs) != len(args) {
		t.Fatalf("args len = %d, want %d", len(gotArgs), len(args))
	}
	for i := range args {
		if !reflect.DeepEqual(gotArgs[i], args[i]) {
			t.Fatalf("arg %d: %#v != %#v", i, gotArgs[i], args[i])
		}
	}
	if !reflect.DeepEqual(gotKw, kw) {
		t.Fatalf("kwargs: %#v != %#v", gotKw, kw)
	}
	// Type fidelity for the numeric tags (DeepEqual would accept only
	// identical types anyway; make the contract explicit).
	if _, ok := gotArgs[3].(int); !ok {
		t.Fatalf("int decoded as %T", gotArgs[3])
	}
	if _, ok := gotArgs[4].(int64); !ok {
		t.Fatalf("int64 decoded as %T", gotArgs[4])
	}
}

// TestPayloadDecodeRejectsCorruption: truncated and tag-corrupted payloads
// error out instead of fabricating arguments or over-allocating.
func TestPayloadDecodeRejectsCorruption(t *testing.T) {
	p, err := EncodeArgs([]any{1, "x", []string{"a", "b"}}, map[string]any{"k": 1})
	if err != nil {
		t.Fatal(err)
	}
	data := p.Bytes()
	for cut := 0; cut < len(data); cut++ {
		trunc := &Payload{data: data[:cut]}
		if _, _, err := trunc.DecodeArgs(); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	bad := append([]byte{}, data...)
	bad[1] = 0xff // absurd args count
	if _, _, err := (&Payload{data: bad}).DecodeArgs(); err == nil {
		t.Fatal("corrupt count decoded")
	}
}

// TestEncodeArgsDeterministicAcrossKwargOrder: the payload bytes (and so
// the payload-derived memo hash) canonicalize kwargs, matching the
// determinism ArgsHash guarantees.
func TestEncodeArgsDeterministicAcrossKwargOrder(t *testing.T) {
	kw1 := map[string]any{}
	kw2 := map[string]any{}
	keys := []string{"a", "b", "c", "d", "e"}
	for _, k := range keys {
		kw1[k] = k + "-v"
	}
	for i := len(keys) - 1; i >= 0; i-- {
		kw2[keys[i]] = keys[i] + "-v"
	}
	p1, err := EncodeArgs([]any{1, "x"}, kw1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := EncodeArgs([]any{1, "x"}, kw2)
	if err != nil {
		t.Fatal(err)
	}
	if string(p1.Bytes()) != string(p2.Bytes()) {
		t.Fatal("payload bytes differ across kwarg insertion order")
	}
	if p1.ArgsHash() != p2.ArgsHash() {
		t.Fatalf("payload hash differs: %s %s", p1.ArgsHash(), p2.ArgsHash())
	}
	p3, err := EncodeArgs([]any{2, "x"}, kw1)
	if err != nil {
		t.Fatal(err)
	}
	if p1.ArgsHash() == p3.ArgsHash() {
		t.Fatal("different args hashed identically")
	}
}

// TestPayloadDecodeArgsIsDeepCopy: every decode of the cached bytes yields
// an isolated copy — mutations through one copy reach neither the original
// arguments nor subsequent copies (the deep-copy-from-bytes path the
// threadpool executor runs).
func TestPayloadDecodeArgsIsDeepCopy(t *testing.T) {
	orig := []any{[]string{"a", "b"}}
	kw := map[string]any{"list": []int{1, 2, 3}}
	p, err := EncodeArgs(orig, kw)
	if err != nil {
		t.Fatal(err)
	}
	cargs, ckw, err := p.DecodeArgs()
	if err != nil {
		t.Fatal(err)
	}
	cargs[0].([]string)[0] = "MUTATED"
	ckw["list"].([]int)[0] = 999
	if orig[0].([]string)[0] != "a" || kw["list"].([]int)[0] != 1 {
		t.Fatal("mutation leaked into caller state")
	}
	again, akw, err := p.DecodeArgs()
	if err != nil {
		t.Fatal(err)
	}
	if again[0].([]string)[0] != "a" || akw["list"].([]int)[0] != 1 {
		t.Fatal("mutation leaked into a later decode of the same payload")
	}
}

// TestWirePayloadZeroRedundancy: attaching a payload makes Wire() reuse the
// encoded bytes verbatim (no re-encode), and the payload survives a decode
// hop still attached — the property EXEX's rank-0 forwarding relies on.
func TestWirePayloadZeroRedundancy(t *testing.T) {
	p, err := EncodeArgs([]any{"x", 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := TaskMsg{ID: 5, App: "a", Priority: 2}
	m.AttachPayload(p)
	w, err := m.Wire()
	if err != nil {
		t.Fatal(err)
	}
	if &w.P[0] != &p.Bytes()[0] {
		t.Fatal("Wire() copied the payload instead of reusing its bytes")
	}
	got, err := w.Task()
	if err != nil {
		t.Fatal(err)
	}
	if got.Payload() == nil {
		t.Fatal("payload not re-attached after wire decode")
	}
	if got.Args[0] != "x" || got.Args[1] != 7 || got.ID != 5 || got.Priority != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	w2, err := got.Wire()
	if err != nil {
		t.Fatal(err)
	}
	if &w2.P[0] != &w.P[0] {
		t.Fatal("onward hop re-encoded the argument payload")
	}
	if got.Payload().ArgsHash() != p.ArgsHash() {
		t.Fatal("payload hash changed across the wire")
	}
}

func TestRegisterIfAbsent(t *testing.T) {
	r := NewRegistry()
	calls := 0
	first := func([]any, map[string]any) (any, error) { calls++; return "first", nil }
	second := func([]any, map[string]any) (any, error) { return "second", nil }
	if err := r.RegisterIfAbsent("app", first); err != nil {
		t.Fatal(err)
	}
	// Second registration is a silent no-op; the first function wins.
	if err := r.RegisterIfAbsent("app", second); err != nil {
		t.Fatal(err)
	}
	e, ok := r.Lookup("app")
	if !ok {
		t.Fatal("entry missing")
	}
	if v, _ := e.Fn(nil, nil); v != "first" {
		t.Fatalf("fn = %v, want the first registration", v)
	}
	if err := r.RegisterIfAbsent("", first); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := r.RegisterIfAbsent("x", nil); err == nil {
		t.Fatal("nil fn accepted")
	}
}

func TestRegisterIfAbsentConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = r.RegisterIfAbsent("shared", func([]any, map[string]any) (any, error) {
				return nil, nil
			})
		}()
	}
	wg.Wait()
	if _, ok := r.Lookup("shared"); !ok {
		t.Fatal("entry missing after concurrent registration")
	}
}
