package serialize

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
)

// Frame tags. Every framed message starts with a 9-byte header: one tag
// byte, a big-endian uint32 stream epoch, and a CRC-32C of the body. The
// epoch identifies the sender's encoder incarnation, letting a receiver
// detect a new stream (sender reset or reconnect) and start a fresh decoder
// at exactly the right frame — the first frame of a fresh gob stream is
// self-describing.
//
// The checksum exists because gob has no integrity protection of its own: a
// frame corrupted in transit can decode *successfully* into wrong data — a
// silently wrong task argument, or a result whose mangled id debits the
// wrong broker bookkeeping entry (both were observed the moment the chaos
// plane started flipping bytes). Verifying CRC-32C before any decode turns
// every corruption into a loud, attributable frame error that the NACK
// resync protocol (internal/executor/htex) can repair.
const (
	frameStream  byte = 0x01 // next message of the sender's persistent gob stream
	frameOneShot byte = 0x02 // standalone self-describing gob stream
)

const frameHeaderLen = 9

// crcTable is CRC-32C (Castagnoli) — hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameChecksum digests a frame's tag, epoch, and body (everything except
// the checksum field itself), so corruption anywhere in the frame — body
// bytes, the epoch, even the tag — is detected rather than misinterpreted.
func frameChecksum(frame []byte) uint32 {
	crc := crc32.Update(0, crcTable, frame[:5])
	return crc32.Update(crc, crcTable, frame[frameHeaderLen:])
}

// epochSeq hands out globally unique stream epochs so no sender incarnation
// can ever be mistaken for its predecessor.
var epochSeq atomic.Uint32

// FrameEncoder is the shared shape of StreamEncoder and OneShotCodec: encode
// v as one frame and pass it to send. Implementations may only guarantee the
// frame bytes during the send call.
type FrameEncoder interface {
	EncodeFrame(v any, send func(frame []byte) error) error
}

// StreamEncoder is a persistent, per-connection gob encoder whose output is
// sliced into tagged frames. Because the underlying gob stream transmits a
// type's descriptor only the first time the type appears, steady-state
// frames carry values alone — the amortization that one-shot framing pays
// for on every message.
//
// EncodeFrame holds the encoder lock across both the encode and the send:
// the peer's StreamDecoder consumes the stream strictly in order, so frames
// must reach the transport in encode order even when multiple goroutines
// submit concurrently.
type StreamEncoder struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	enc   *gob.Encoder
	epoch uint32
}

// NewStreamEncoder starts a fresh stream with a unique epoch.
func NewStreamEncoder() *StreamEncoder {
	e := &StreamEncoder{}
	e.resetLocked()
	return e
}

// resetLocked abandons the current stream and starts a new one. Callers must
// hold e.mu (or own e exclusively, as in NewStreamEncoder).
func (e *StreamEncoder) resetLocked() {
	e.epoch = epochSeq.Add(1)
	e.buf.Reset()
	e.enc = gob.NewEncoder(&e.buf)
}

// Epoch exposes the current stream incarnation (tests, diagnostics).
func (e *StreamEncoder) Epoch() uint32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.epoch
}

// Reset abandons the current stream; the next frame opens a new epoch and is
// self-describing from its first byte. Call after a transport-level
// reconnect so the peer's decoder resyncs.
func (e *StreamEncoder) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.resetLocked()
}

// frameLocked encodes v as the next frame of the current stream. The
// returned slice aliases the internal buffer and is valid until the next
// encode or reset.
func (e *StreamEncoder) frameLocked(v any) ([]byte, error) {
	e.buf.Reset()
	var hdr [frameHeaderLen]byte
	hdr[0] = frameStream
	binary.BigEndian.PutUint32(hdr[1:5], e.epoch)
	e.buf.Write(hdr[:])
	if err := e.enc.Encode(v); err != nil {
		return nil, err
	}
	frame := e.buf.Bytes()
	binary.BigEndian.PutUint32(frame[5:frameHeaderLen], frameChecksum(frame))
	return frame, nil
}

// EncodeFrame encodes v on the persistent stream and hands the finished
// frame to send under the encoder lock. An encode error poisons the stream
// (gob's sent-type bookkeeping can run ahead of the bytes actually shipped),
// so the encoder resets to a fresh epoch and retries once — the fallback to
// a self-describing start that reconnects rely on; if v itself is
// unencodable the error is returned and the stream stays fresh. A send
// error also resets: the frame never reached the peer, so descriptors it
// introduced must be re-sent for the next frame to be decodable.
func (e *StreamEncoder) EncodeFrame(v any, send func(frame []byte) error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	frame, err := e.frameLocked(v)
	if err != nil {
		e.resetLocked()
		if frame, err = e.frameLocked(v); err != nil {
			e.resetLocked()
			return fmt.Errorf("serialize: stream encode: %w", err)
		}
	}
	if err := send(frame); err != nil {
		e.resetLocked()
		return err
	}
	return nil
}

// OneShotCodec frames every message as its own self-describing gob stream —
// the pre-streaming wire format, retained as the no-session fallback (relay
// fan-out, reconnect hand-off) and as the benchmark baseline that the
// streaming path is measured against.
type OneShotCodec struct{}

// EncodeFrame implements FrameEncoder with a fresh gob stream per message.
func (OneShotCodec) EncodeFrame(v any, send func(frame []byte) error) error {
	buf := getBuf()
	defer putBuf(buf)
	var hdr [frameHeaderLen]byte
	hdr[0] = frameOneShot
	buf.Write(hdr[:])
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return fmt.Errorf("serialize: one-shot encode: %w", err)
	}
	frame := buf.Bytes()
	binary.BigEndian.PutUint32(frame[5:frameHeaderLen], frameChecksum(frame))
	return send(frame)
}

// frameFeed is the io.Reader a StreamDecoder's persistent gob.Decoder pulls
// from: exactly the current frame's body, then EOF. Implementing
// io.ByteReader keeps gob from wrapping the feed in a bufio.Reader, so the
// decoder consumes precisely one frame per Decode and never buffers across
// frames.
type frameFeed struct{ b []byte }

func (f *frameFeed) Read(p []byte) (int, error) {
	if len(f.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, f.b)
	f.b = f.b[n:]
	return n, nil
}

func (f *frameFeed) ReadByte() (byte, error) {
	if len(f.b) == 0 {
		return 0, io.EOF
	}
	c := f.b[0]
	f.b = f.b[1:]
	return c, nil
}

// StreamDecoder is the receiving half of a per-connection stream: it feeds
// tagged frames, in arrival order, into a persistent gob decoder. A frame
// bearing a new epoch transparently starts a fresh decoder (sender reset or
// reconnect), and one-shot frames decode standalone at any point — mixed
// traffic is fine. Not safe for concurrent use; receivers own one decoder
// per peer on their single receive goroutine.
type StreamDecoder struct {
	feed  frameFeed
	dec   *gob.Decoder
	epoch uint32
	live  bool
}

// NewStreamDecoder returns a decoder with no stream state; the first frame
// establishes the epoch.
func NewStreamDecoder() *StreamDecoder { return &StreamDecoder{} }

// PeekFrameEpoch reads a frame's stream epoch without decoding it. ok is
// false for one-shot and malformed frames, which carry no stream identity.
// Epochs are globally unique per encoder incarnation, so observing a new
// epoch on a connection is an in-band signal that the peer started a new
// session — receivers can key their own reply-stream resets off it instead
// of trusting out-of-band connection events.
func PeekFrameEpoch(frame []byte) (epoch uint32, ok bool) {
	if len(frame) < frameHeaderLen || frame[0] != frameStream {
		return 0, false
	}
	return binary.BigEndian.Uint32(frame[1:5]), true
}

// DecodeFrame decodes one received frame into v. The body checksum is
// verified before any gob state is touched: a corrupted frame fails loudly
// here and can never decode into silently wrong data.
func (d *StreamDecoder) DecodeFrame(frame []byte, v any) error {
	if len(frame) < frameHeaderLen {
		return fmt.Errorf("serialize: frame of %d bytes is shorter than the header", len(frame))
	}
	tag := frame[0]
	epoch := binary.BigEndian.Uint32(frame[1:5])
	body := frame[frameHeaderLen:]
	if want, got := binary.BigEndian.Uint32(frame[5:frameHeaderLen]), frameChecksum(frame); want != got {
		if tag == frameStream {
			// The sender's gob stream advanced past this frame (it may have
			// carried type descriptors), so the rest of the epoch cannot be
			// trusted; drop the stream and let the NACK/resync path repair it.
			d.live = false
		}
		return fmt.Errorf("serialize: frame checksum mismatch (epoch %d): %08x != %08x", epoch, got, want)
	}
	switch tag {
	case frameOneShot:
		return gob.NewDecoder(bytes.NewReader(body)).Decode(v)
	case frameStream:
		if !d.live || epoch != d.epoch {
			d.feed.b = nil
			d.dec = gob.NewDecoder(&d.feed)
			d.epoch = epoch
			d.live = true
		}
		d.feed.b = body
		if err := d.dec.Decode(v); err != nil {
			// The stream is unrecoverable mid-epoch; drop it so a future
			// epoch (sender reset) resyncs cleanly.
			d.live = false
			return fmt.Errorf("serialize: stream decode (epoch %d): %w", epoch, err)
		}
		if len(d.feed.b) != 0 {
			d.live = false
			return fmt.Errorf("serialize: stream frame (epoch %d) carried %d trailing bytes", epoch, len(d.feed.b))
		}
		return nil
	default:
		return fmt.Errorf("serialize: unknown frame tag 0x%02x", tag)
	}
}
