package serialize

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"sort"
)

// The compact value codec behind encode-once payloads.
//
// gob is self-describing: every independent stream re-transmits type
// descriptors, and every fresh decoder re-parses and re-compiles them —
// a fixed ~10µs+ tax per payload that dwarfs the actual argument bytes for
// the small-argument tasks the paper's throughput experiments submit
// (§4.3.1 targets >1000 tasks/s). Since a payload is decoded exactly once,
// by the worker about to run the task, that tax cannot be amortized the way
// the per-connection streaming codecs amortize it for wire envelopes.
//
// So payloads encode the common argument shapes — nil, bool, integers,
// floats, strings, byte/str/int/float slices, []any, string-keyed maps —
// with a one-byte tag plus a fixed little encoding each, and fall back to a
// length-prefixed self-contained gob stream only for registered user types.
// The format is fully deterministic for the fast-path shapes (maps encode
// sorted), which is what lets the memoization hash be a plain digest of the
// payload bytes; gob-fallback values are deterministic for types whose
// descriptor ids are pinned (see primeGob/RegisterType).

// Value tags. Appending new tags is fine; reordering or removing them
// changes every payload hash and so invalidates existing checkpoints.
const (
	vNil byte = iota
	vFalse
	vTrue
	vInt      // zigzag varint, decodes to int
	vInt64    // zigzag varint, decodes to int64
	vFloat64  // 8-byte big-endian IEEE 754
	vString   // varint length + bytes
	vBytes    // varint length + raw bytes ([]byte)
	vStrings  // varint count + strings ([]string)
	vInts     // varint count + zigzag varints ([]int)
	vFloat64s // varint count + 8-byte values ([]float64)
	vList     // varint count + values ([]any)
	vMapSA    // varint count + sorted (string, value) pairs (map[string]any)
	vMapSS    // varint count + sorted (string, string) pairs (map[string]string)
	vGob      // varint length + self-contained gob stream of *any
)

// valueWriter appends the codec's primitives to a byte slice (kept on a
// pooled bytes.Buffer by the caller).
type valueWriter struct {
	b []byte
}

func (w *valueWriter) byte1(c byte)     { w.b = append(w.b, c) }
func (w *valueWriter) uvarint(u uint64) { w.b = binary.AppendUvarint(w.b, u) }
func (w *valueWriter) varint(i int64)   { w.b = binary.AppendVarint(w.b, i) }
func (w *valueWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}

// encodeValue appends one tagged value.
func (w *valueWriter) encodeValue(v any) error {
	switch t := v.(type) {
	case nil:
		w.byte1(vNil)
	case bool:
		if t {
			w.byte1(vTrue)
		} else {
			w.byte1(vFalse)
		}
	case int:
		w.byte1(vInt)
		w.varint(int64(t))
	case int64:
		w.byte1(vInt64)
		w.varint(t)
	case float64:
		w.byte1(vFloat64)
		w.b = binary.BigEndian.AppendUint64(w.b, math.Float64bits(t))
	case string:
		w.byte1(vString)
		w.str(t)
	case []byte:
		w.byte1(vBytes)
		w.uvarint(uint64(len(t)))
		w.b = append(w.b, t...)
	case []string:
		w.byte1(vStrings)
		w.uvarint(uint64(len(t)))
		for _, s := range t {
			w.str(s)
		}
	case []int:
		w.byte1(vInts)
		w.uvarint(uint64(len(t)))
		for _, i := range t {
			w.varint(int64(i))
		}
	case []float64:
		w.byte1(vFloat64s)
		w.uvarint(uint64(len(t)))
		for _, f := range t {
			w.b = binary.BigEndian.AppendUint64(w.b, math.Float64bits(f))
		}
	case []any:
		w.byte1(vList)
		w.uvarint(uint64(len(t)))
		for _, e := range t {
			if err := w.encodeValue(e); err != nil {
				return err
			}
		}
	case map[string]any:
		w.byte1(vMapSA)
		w.uvarint(uint64(len(t)))
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			w.str(k)
			if err := w.encodeValue(t[k]); err != nil {
				return err
			}
		}
	case map[string]string:
		w.byte1(vMapSS)
		w.uvarint(uint64(len(t)))
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			w.str(k)
			w.str(t[k])
		}
	default:
		// Registered user type: a self-contained gob stream, the same
		// contract (and the same RegisterType requirement) the pure-gob
		// wire format had.
		w.byte1(vGob)
		buf := getBuf()
		err := gob.NewEncoder(buf).Encode(&v)
		if err != nil {
			putBuf(buf)
			return fmt.Errorf("serialize: encode %T: %w", v, err)
		}
		w.uvarint(uint64(buf.Len()))
		w.b = append(w.b, buf.Bytes()...)
		putBuf(buf)
	}
	return nil
}

// valueReader consumes the codec's primitives from a byte slice.
type valueReader struct {
	b []byte
}

var errShortPayload = fmt.Errorf("serialize: truncated payload")

func (r *valueReader) byte1() (byte, error) {
	if len(r.b) == 0 {
		return 0, errShortPayload
	}
	c := r.b[0]
	r.b = r.b[1:]
	return c, nil
}

func (r *valueReader) uvarint() (uint64, error) {
	u, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, errShortPayload
	}
	r.b = r.b[n:]
	return u, nil
}

func (r *valueReader) varint() (int64, error) {
	i, n := binary.Varint(r.b)
	if n <= 0 {
		return 0, errShortPayload
	}
	r.b = r.b[n:]
	return i, nil
}

func (r *valueReader) take(n uint64) ([]byte, error) {
	if uint64(len(r.b)) < n {
		return nil, errShortPayload
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out, nil
}

func (r *valueReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	raw, err := r.take(n)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

func (r *valueReader) u64() (uint64, error) {
	raw, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(raw), nil
}

// count reads a collection length, bounding it by the bytes that remain so
// corrupt input cannot provoke giant allocations.
func (r *valueReader) count() (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(r.b)) {
		return 0, errShortPayload
	}
	return int(n), nil
}

// decodeValue reads one tagged value. Every decode builds fresh containers,
// so the result is always a deep copy of what was encoded.
func (r *valueReader) decodeValue() (any, error) {
	tag, err := r.byte1()
	if err != nil {
		return nil, err
	}
	switch tag {
	case vNil:
		return nil, nil
	case vFalse:
		return false, nil
	case vTrue:
		return true, nil
	case vInt:
		i, err := r.varint()
		return int(i), err
	case vInt64:
		return r.varint()
	case vFloat64:
		u, err := r.u64()
		return math.Float64frombits(u), err
	case vString:
		return r.str()
	case vBytes:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		raw, err := r.take(n)
		if err != nil {
			return nil, err
		}
		out := make([]byte, len(raw))
		copy(out, raw)
		return out, nil
	case vStrings:
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		out := make([]string, n)
		for i := range out {
			if out[i], err = r.str(); err != nil {
				return nil, err
			}
		}
		return out, nil
	case vInts:
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		out := make([]int, n)
		for i := range out {
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			out[i] = int(v)
		}
		return out, nil
	case vFloat64s:
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		out := make([]float64, n)
		for i := range out {
			u, err := r.u64()
			if err != nil {
				return nil, err
			}
			out[i] = math.Float64frombits(u)
		}
		return out, nil
	case vList:
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		out := make([]any, n)
		for i := range out {
			if out[i], err = r.decodeValue(); err != nil {
				return nil, err
			}
		}
		return out, nil
	case vMapSA:
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		out := make(map[string]any, n)
		for i := 0; i < n; i++ {
			k, err := r.str()
			if err != nil {
				return nil, err
			}
			if out[k], err = r.decodeValue(); err != nil {
				return nil, err
			}
		}
		return out, nil
	case vMapSS:
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		out := make(map[string]string, n)
		for i := 0; i < n; i++ {
			k, err := r.str()
			if err != nil {
				return nil, err
			}
			if out[k], err = r.str(); err != nil {
				return nil, err
			}
		}
		return out, nil
	case vGob:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		raw, err := r.take(n)
		if err != nil {
			return nil, err
		}
		var v any
		if err := gob.NewDecoder(newFeed(raw)).Decode(&v); err != nil {
			return nil, fmt.Errorf("serialize: decode gob value: %w", err)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("serialize: unknown value tag 0x%02x", tag)
	}
}

// newFeed wraps raw bytes in a reader implementing io.ByteReader so gob
// does not add its own bufio layer.
func newFeed(raw []byte) *frameFeed { return &frameFeed{b: raw} }
