// Package serialize is the wire format and code-shipping layer, standing in
// for Parsl's use of pickle/dill (§3.2). Go functions cannot be serialized,
// so apps are registered by name in a Registry and only the name plus
// serialized arguments travel to workers — the same way a pickled Python
// function resolves against the module namespace on the executing side.
//
// Serializing arguments across the executor boundary also supplies Parsl's
// immutability guarantee: the executing side always operates on a deep
// copy, so mutations cannot leak back to the submitting program.
//
// # Encode-once data plane
//
// A task's resolved arguments are serialized exactly once, at submit time,
// into a Payload (EncodeArgs). That one byte slice then serves every
// downstream consumer:
//
//   - the memoization key hashes the payload bytes (Payload.ArgsHash) —
//     no per-argument encoders;
//   - executors decode the worker's defensive deep copy from the cached
//     bytes (Payload.DecodeArgs) — no fresh encode+decode round trip;
//   - remote executors ship the bytes verbatim inside a WireTask envelope —
//     brokers route on the envelope without ever touching the argument
//     bytes, and retries reuse the same payload.
//
// Payload bytes use a compact deterministic value codec (value.go): common
// argument shapes — nil, bool, ints, floats, strings, byte/str/int/float
// slices, []any, string-keyed maps — encode with one-byte tags; registered
// user types fall back to an embedded self-contained gob stream, the same
// RegisterType contract pickle's importable-classes rule maps to. The fast
// path exists because gob's self-describing streams carry a fixed
// descriptor-parsing cost per independent stream that cannot be amortized
// for a payload decoded exactly once, by one worker.
//
// # Wire-format compatibility
//
// The one-shot framing (EncodeTask/DecodeTask, EncodeResult/DecodeResult) is
// a self-describing gob message: any peer can decode any message in
// isolation, which is what the LLEX relay (it fans a single client's
// frames out across workers) and the MPI interior of EXEX pools require.
// Point-to-point sessions (HTEX client ↔ interchange ↔ manager) instead run
// persistent streaming codecs (StreamEncoder/StreamDecoder in stream.go)
// that amortize gob type-descriptor transmission across the connection; each
// frame carries an epoch so a peer that reconnects mid-session resyncs on
// the sender's next stream, and self-describing one-shot frames remain the
// fallback (OneShotCodec) when no session state can be assumed. The two
// framings are tagged and a StreamDecoder accepts both, so mixed traffic on
// one connection stays decodable.
//
// Hash stability: ArgsHash digests (and payload digests, via the pinned
// value-codec byte format plus primed gob descriptor ids) are stable across
// processes and releases — golden-value tests enforce it — because
// checkpoint files persist memoization keys built from them.
package serialize

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Fn is the executable form of an app: positional args plus keyword args, one
// result value or an error. Apps must be pure functions of their inputs.
type Fn func(args []any, kwargs map[string]any) (any, error)

// Entry is a registered app.
type Entry struct {
	Name    string
	Fn      Fn
	Version string // bumping invalidates memoized results, like editing a body
}

// BodyHash returns the hash that memoization uses in its lookup key. It
// plays the role of Parsl's hash of the function body: Go cannot hash
// compiled code, so the (name, version) pair is hashed instead, and changing
// Version models editing the function.
func (e Entry) BodyHash() string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(e.Name))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(e.Version))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Registry maps app names to executable functions. Workers hold a registry
// mirroring the client's; a task referencing an unregistered name fails with
// a descriptive error (the analogue of an ImportError on a Parsl worker).
type Registry struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]Entry)}
}

// defaultVersion is the app version implied when none is given; it feeds
// the memoization body hash, so every registration path must share it.
const defaultVersion = "v1"

// Register adds an app under name. Duplicate names are rejected so that a
// memoization key can never silently refer to two different functions.
func (r *Registry) Register(name string, fn Fn) error {
	return r.register(name, defaultVersion, fn, false)
}

// RegisterVersion adds an app with an explicit version string.
func (r *Registry) RegisterVersion(name, version string, fn Fn) error {
	return r.register(name, version, fn, false)
}

// RegisterIfAbsent registers name unless an entry already exists, in one
// critical section. Callers that would otherwise Lookup-then-Register (the
// DFK's lazily created internal apps, e.g. the stage-in transfer task) use
// this to stay atomic under concurrent submission.
func (r *Registry) RegisterIfAbsent(name string, fn Fn) error {
	return r.register(name, defaultVersion, fn, true)
}

// register validates and inserts under the lock; ifAbsent turns a
// duplicate into a no-op instead of an error.
func (r *Registry) register(name, version string, fn Fn, ifAbsent bool) error {
	if name == "" {
		return fmt.Errorf("serialize: empty app name")
	}
	if fn == nil {
		return fmt.Errorf("serialize: nil fn for app %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		if ifAbsent {
			return nil
		}
		return fmt.Errorf("serialize: app %q already registered", name)
	}
	r.entries[name] = Entry{Name: name, Fn: fn, Version: version}
	return nil
}

// Lookup returns the entry for name.
func (r *Registry) Lookup(name string) (Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// Names returns the sorted registered app names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TaskMsg is the in-memory form of a task crossing the submission boundary:
// app name plus fully resolved arguments (futures have been replaced by
// their values before encoding). Priority carries the per-call dispatch
// priority across the submission boundary so remote queues can honor it too;
// Tenant and Weight carry the fair-queuing identity so brokers past the
// client leg (the HTEX interchange) can keep tenant shares fair as well.
type TaskMsg struct {
	ID       int64
	App      string
	Args     []any
	Kwargs   map[string]any
	Priority int
	Tenant   string
	Weight   int

	// payload is the encode-once serialization of Args/Kwargs, attached by
	// the dispatch pipeline at launch. Unexported so it never rides the gob
	// wire itself — WireTask carries its bytes instead.
	payload *Payload
}

// AttachPayload caches the encode-once serialization of the message's
// arguments, letting every downstream consumer (wire framing, deep copies,
// hashing) reuse the bytes instead of re-encoding.
func (m *TaskMsg) AttachPayload(p *Payload) { m.payload = p }

// Payload returns the attached encode-once payload (nil when the message
// was built without one, e.g. direct executor submissions in tests).
func (m *TaskMsg) Payload() *Payload { return m.payload }

// ArgsPayload returns the attached payload, encoding the arguments now —
// and caching the result — if the message was built without one.
func (m *TaskMsg) ArgsPayload() (*Payload, error) {
	if m.payload == nil {
		p, err := EncodeArgs(m.Args, m.Kwargs)
		if err != nil {
			return nil, err
		}
		m.payload = p
	}
	return m.payload, nil
}

// ResultMsg carries a task result back from a worker. Err is a string because
// error values do not gob-encode portably; the empty string means success.
type ResultMsg struct {
	ID       int64
	Value    any
	Err      string
	WorkerID string
}

func init() {
	// Base argument types every deployment can rely on. Composite user
	// types are added via RegisterType.
	gob.Register([]any{})
	gob.Register(map[string]any{})
	gob.Register(map[string]string{})
	gob.Register([]string{})
	gob.Register([]int{})
	gob.Register([]float64{})
	gob.Register([]byte{})
	gob.Register(time0{})

	// Pin gob's wire-type ids for every base type, in a fixed order, before
	// any real encode can run. gob assigns descriptor ids from a
	// process-global counter at first encode, so without this the byte
	// stream for, say, []string would depend on which types the process
	// happened to serialize first — and the memoization hashes built from
	// those bytes would not be reproducible across runs. Priming here (and
	// in RegisterType for user types) is what makes ArgsHash and
	// Payload.ArgsHash digests stable enough to pin with golden values and
	// to persist in checkpoint files.
	primeGob(
		false, true,
		int(0), int8(0), int16(0), int32(0), int64(0),
		uint(0), uint8(0), uint16(0), uint32(0), uint64(0),
		float32(0), float64(0), "",
		[]any{}, map[string]any{}, map[string]string{},
		[]string{}, []int{}, []float64{}, []byte{},
		time0{},
		WireTask{}, ResultMsg{},
	)
}

// primeGob encodes one value of each type to a throwaway stream so gob's
// global descriptor-id counter assigns their ids deterministically. The
// concrete values are encoded directly (not through an interface), which
// assigns descriptor ids without requiring registration.
func primeGob(vs ...any) {
	enc := gob.NewEncoder(io.Discard)
	for _, v := range vs {
		_ = enc.Encode(v)
	}
}

// time0 exists only to reserve a concrete type in gob's registry from this
// package's init; it is never sent.
type time0 struct{}

// RegisterType makes a concrete argument/result type encodable, mirroring
// how pickle needs importable classes. Registration also pins the type's
// gob descriptor id (see init), so programs that register their types in a
// deterministic order — the normal sequential setup — get reproducible
// argument hashes for those types too.
func RegisterType(v any) {
	gob.Register(v)
	primeGob(v)
}

// bufPool recycles gob scratch buffers: one-shot frames, wire envelopes,
// and the value codec's gob-fallback encodes borrow from here instead of
// growing a fresh bytes.Buffer. (Encode-once payloads do not: a Payload
// owns its bytes for the task's lifetime, so there is nothing to return to
// a pool.)
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBuf(b *bytes.Buffer) { bufPool.Put(b) }

// hashPool recycles FNV-64a hashers for ArgsHash.
var hashPool = sync.Pool{New: func() any { return fnv.New64a() }}

// fnv64a is the allocation-free FNV-64a over a byte slice, used to hash
// encode-once payload bytes.
func fnv64a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// payloadVersion is the leading byte of every encode-once payload; bumping
// it invalidates all persisted memo keys, so only do that when the value
// codec's byte format actually changes.
const payloadVersion byte = 1

// Payload is the encode-once serialized form of a task's resolved
// arguments, produced by EncodeArgs with the compact value codec (see
// value.go): common argument shapes encode with one-byte tags, registered
// user types through an embedded gob fallback. The bytes are immutable
// after construction and shared freely across the memo hash, defensive
// deep copies, the wire, and retries.
//
// Payloads are reference counted so their byte buffers can be pooled: the
// task record owns one reference from EncodeArgs until retirement, and
// every consumer that may outlive the record (a dispatch-lane submission,
// an executor's retransmit buffer) takes its own with Retain and drops it
// with Release. When the last reference drops, the buffer returns to a pool
// for the next EncodeArgs. A forgotten Release degrades to garbage
// collection, never corruption.
type Payload struct {
	refs   atomic.Int32
	data   []byte
	sum    uint64
	hashed bool

	// inline backs data for small argument lists, so a Payload fresh from the
	// pool encodes without a heap buffer. Encodes that outgrow it spill to a
	// heap buffer, which the pool then keeps for later occupants.
	inline [128]byte
}

// payloadPool recycles Payload structs and (via their data capacity) the
// encode buffers of the million-task hot path.
var payloadPool = sync.Pool{New: func() any { return new(Payload) }}

// Retain takes an additional reference and returns p for chaining.
func (p *Payload) Retain() *Payload {
	p.refs.Add(1)
	return p
}

// Release drops a reference; the last one resets the Payload and returns its
// buffer to the pool. Safe on nil. Releasing more times than retained is an
// engine bug and panics (the buffer would already belong to someone else).
func (p *Payload) Release() {
	if p == nil {
		return
	}
	switch n := p.refs.Add(-1); {
	case n > 0:
		return
	case n < 0:
		panic("serialize: Payload over-released")
	}
	p.data = p.data[:0]
	p.sum = 0
	p.hashed = false
	payloadPool.Put(p)
}

// EncodeArgs serializes resolved arguments exactly once into a Payload
// holding one reference. The buffer comes from the payload pool when a
// recycled one is available, because the Payload keeps it for the task's
// whole lifetime (hash, wire, deep copies, retries) — that buffer is the one
// serialization cost the task ever pays. The encoding is canonical — maps
// encode with sorted keys — so identical arguments always produce identical
// bytes, and the memoization hash can be a plain digest of them.
func EncodeArgs(args []any, kwargs map[string]any) (*Payload, error) {
	p := payloadPool.Get().(*Payload)
	if cap(p.data) == 0 {
		p.data = p.inline[:0]
	}
	w := valueWriter{b: p.data[:0]}
	w.byte1(payloadVersion)
	w.uvarint(uint64(len(args)))
	for i, a := range args {
		if err := w.encodeValue(a); err != nil {
			p.data = w.b[:0]
			payloadPool.Put(p)
			return nil, fmt.Errorf("serialize: encode arg %d: %w", i, err)
		}
	}
	w.uvarint(uint64(len(kwargs)))
	if len(kwargs) > 0 {
		keys := make([]string, 0, len(kwargs))
		for k := range kwargs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			w.str(k)
			if err := w.encodeValue(kwargs[k]); err != nil {
				p.data = w.b[:0]
				payloadPool.Put(p)
				return nil, fmt.Errorf("serialize: encode kwarg %q: %w", k, err)
			}
		}
	}
	p.data = w.b
	p.sum = fnv64a(w.b)
	p.hashed = true
	p.refs.Store(1)
	return p, nil
}

// payloadFromBytes wraps already-encoded payload bytes arriving off the
// wire, holding one reference. The hash is computed on demand: worker-side
// consumers never ask for it.
func payloadFromBytes(b []byte) *Payload {
	p := &Payload{data: b}
	p.refs.Store(1)
	return p
}

// PayloadFromBytes wraps already-encoded payload bytes — e.g. replayed from
// the durable dataflow log — holding one reference. The slice is retained;
// callers replaying from a shared buffer must pass a copy.
func PayloadFromBytes(b []byte) *Payload { return payloadFromBytes(b) }

// Bytes exposes the encoded payload. Callers must treat it as read-only.
func (p *Payload) Bytes() []byte { return p.data }

// Len reports the encoded size in bytes.
func (p *Payload) Len() int { return len(p.data) }

// ArgsHash returns the FNV-64a digest of the payload bytes, formatted like
// ArgsHash(args, kwargs) output. Because the payload encoding is canonical
// (sorted kwargs), identical arguments always produce identical digests —
// this is the memoization hash of the encode-once pipeline, and it costs no
// additional encoding.
func (p *Payload) ArgsHash() string {
	sum := p.sum
	if !p.hashed {
		sum = fnv64a(p.data)
	}
	return fmt.Sprintf("%016x", sum)
}

// DigestBytes returns the content digest of encoded payload bytes — the
// same %016x FNV-64a value Payload.ArgsHash reports for the same bytes.
// It lets the executor side (managers, the interchange) derive a task's
// input digest from the WireTask.P column alone, with no wire-format
// change and no argument decode: the digest a manager advertises in its
// heartbeat matches the one the DFK computed from the attached payload,
// because both hash the identical canonical encoding.
func DigestBytes(b []byte) string {
	return fmt.Sprintf("%016x", fnv64a(b))
}

// DecodeArgs decodes a fresh deep copy of the arguments from the cached
// bytes — the defensive copy handed to executors. Every call builds new
// containers, so repeated decodes (retries, replays) stay isolated from
// one another and from the submitting program.
func (p *Payload) DecodeArgs() ([]any, map[string]any, error) {
	return DecodeArgsBytes(p.data)
}

// DecodeArgsBytes decodes arguments straight from an encoded payload's
// bytes without constructing a Payload — the zero-copy manager leg: a
// worker hands the wire frame's P bytes directly to the decoder, and only
// the decoded values (fresh containers by construction) survive the call.
// The input is read, never retained.
func DecodeArgsBytes(b []byte) ([]any, map[string]any, error) {
	r := valueReader{b: b}
	ver, err := r.byte1()
	if err != nil {
		return nil, nil, fmt.Errorf("serialize: decode args: %w", err)
	}
	if ver != payloadVersion {
		return nil, nil, fmt.Errorf("serialize: payload version %d, want %d", ver, payloadVersion)
	}
	nArgs, err := r.count()
	if err != nil {
		return nil, nil, fmt.Errorf("serialize: decode args: %w", err)
	}
	var args []any
	if nArgs > 0 {
		args = make([]any, nArgs)
		for i := range args {
			if args[i], err = r.decodeValue(); err != nil {
				return nil, nil, fmt.Errorf("serialize: decode arg %d: %w", i, err)
			}
		}
	}
	nKw, err := r.count()
	if err != nil {
		return nil, nil, fmt.Errorf("serialize: decode args: %w", err)
	}
	var kwargs map[string]any
	if nKw > 0 {
		kwargs = make(map[string]any, nKw)
		for i := 0; i < nKw; i++ {
			k, err := r.str()
			if err != nil {
				return nil, nil, fmt.Errorf("serialize: decode kwargs: %w", err)
			}
			if kwargs[k], err = r.decodeValue(); err != nil {
				return nil, nil, fmt.Errorf("serialize: decode kwarg %q: %w", k, err)
			}
		}
	}
	if len(r.b) != 0 {
		return nil, nil, fmt.Errorf("serialize: payload carried %d trailing bytes", len(r.b))
	}
	return args, kwargs, nil
}

// WireTask is the on-the-wire form of a task: the routing envelope (id, app,
// priority, tenant) plus the encode-once argument payload as raw bytes.
// Brokers (the HTEX interchange) queue, prioritize, fair-share, cancel, and
// re-frame WireTasks without ever decoding — or re-encoding — the argument
// bytes; only the worker that executes the task pays the argument decode.
type WireTask struct {
	ID       int64
	App      string
	Priority int
	Tenant   string
	Weight   int
	P        []byte
}

// Wire converts the message to its wire form, reusing the attached payload
// (or encoding one now, exactly once, if absent).
func (m *TaskMsg) Wire() (WireTask, error) {
	p, err := m.ArgsPayload()
	if err != nil {
		return WireTask{}, fmt.Errorf("serialize: encode task %d: %w", m.ID, err)
	}
	return WireTask{
		ID: m.ID, App: m.App, Priority: m.Priority,
		Tenant: m.Tenant, Weight: m.Weight, P: p.Bytes(),
	}, nil
}

// Task decodes the argument payload and rebuilds the executable message.
// The payload stays attached, so a hop that re-serializes (EXEX rank 0
// forwarding over MPI) reuses the bytes.
func (w WireTask) Task() (TaskMsg, error) {
	p := payloadFromBytes(w.P)
	args, kwargs, err := p.DecodeArgs()
	if err != nil {
		return TaskMsg{}, fmt.Errorf("serialize: decode task %d: %w", w.ID, err)
	}
	return TaskMsg{
		ID: w.ID, App: w.App, Priority: w.Priority,
		Tenant: w.Tenant, Weight: w.Weight,
		Args: args, Kwargs: kwargs, payload: p,
	}, nil
}

// EncodeWire produces the one-shot envelope bytes for w; the argument
// payload inside passes through as an opaque byte column (gob encodes
// []byte as length plus raw copy — no structural re-encode).
func EncodeWire(w WireTask) ([]byte, error) {
	buf := getBuf()
	defer putBuf(buf)
	if err := gob.NewEncoder(buf).Encode(w); err != nil {
		return nil, fmt.Errorf("serialize: encode task %d: %w", w.ID, err)
	}
	return bytes.Clone(buf.Bytes()), nil
}

// DecodeWire decodes a one-shot envelope without touching the argument
// payload — what brokers use to route on the envelope alone.
func DecodeWire(b []byte) (WireTask, error) {
	var w WireTask
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return WireTask{}, fmt.Errorf("serialize: decode task: %w", err)
	}
	return w, nil
}

// EncodeTask serializes a TaskMsg as one self-describing message (the
// one-shot framing; see the package comment for when streaming applies).
// An attached payload is reused verbatim.
func EncodeTask(m TaskMsg) ([]byte, error) {
	w, err := m.Wire()
	if err != nil {
		return nil, err
	}
	return EncodeWire(w)
}

// DecodeTask deserializes a one-shot TaskMsg, decoding the argument payload
// and leaving it attached for onward hops.
func DecodeTask(b []byte) (TaskMsg, error) {
	w, err := DecodeWire(b)
	if err != nil {
		return TaskMsg{}, err
	}
	return w.Task()
}

// EncodeResult serializes a ResultMsg.
func EncodeResult(m ResultMsg) ([]byte, error) {
	buf := getBuf()
	defer putBuf(buf)
	if err := gob.NewEncoder(buf).Encode(m); err != nil {
		return nil, fmt.Errorf("serialize: encode result %d: %w", m.ID, err)
	}
	return bytes.Clone(buf.Bytes()), nil
}

// DecodeResult deserializes a ResultMsg.
func DecodeResult(b []byte) (ResultMsg, error) {
	var m ResultMsg
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
		return ResultMsg{}, fmt.Errorf("serialize: decode result: %w", err)
	}
	return m, nil
}

// DeepCopyArgs produces the defensive copy handed to in-process executors so
// that apps cannot mutate caller state. It is the compatibility path for
// messages without an attached payload; the dispatch pipeline instead calls
// Payload.DecodeArgs on the encode-once bytes, skipping the encode half.
// Values that cannot be encoded (channels, funcs) produce an error.
func DeepCopyArgs(args []any, kwargs map[string]any) ([]any, map[string]any, error) {
	p, err := EncodeArgs(args, kwargs)
	if err != nil {
		return nil, nil, err
	}
	return p.DecodeArgs()
}

// ArgsHash produces a deterministic digest of the argument list for
// memoization keys. Each argument's gob encoding streams straight into a
// pooled FNV-64a hasher (no intermediate buffer per argument); map iteration
// order is neutralized by hashing sorted kwarg keys with their individually
// encoded values. The digest for given arguments is stable across releases —
// a golden-value test pins it — because checkpoint files persist keys built
// from it.
func ArgsHash(args []any, kwargs map[string]any) (string, error) {
	h := hashPool.Get().(hash.Hash64)
	h.Reset()
	defer hashPool.Put(h)
	for i, a := range args {
		a := a
		if err := gob.NewEncoder(h).Encode(&a); err != nil {
			return "", fmt.Errorf("serialize: hash arg %d: %w", i, err)
		}
		_, _ = h.Write([]byte{0})
	}
	keys := make([]string, 0, len(kwargs))
	for k := range kwargs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		_, _ = h.Write([]byte(k))
		_, _ = h.Write([]byte{1})
		v := kwargs[k]
		if err := gob.NewEncoder(h).Encode(&v); err != nil {
			return "", fmt.Errorf("serialize: hash kwarg %q: %w", k, err)
		}
		_, _ = h.Write([]byte{2})
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}
