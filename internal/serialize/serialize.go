// Package serialize is the wire format and code-shipping layer, standing in
// for Parsl's use of pickle/dill (§3.2). Go functions cannot be serialized,
// so apps are registered by name in a Registry and only the name plus
// gob-encoded arguments travel to workers — the same way a pickled Python
// function resolves against the module namespace on the executing side.
//
// Encoding arguments through gob also supplies Parsl's immutability
// guarantee: the executing side always operates on a deep copy, so mutations
// cannot leak back to the submitting program.
package serialize

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Fn is the executable form of an app: positional args plus keyword args, one
// result value or an error. Apps must be pure functions of their inputs.
type Fn func(args []any, kwargs map[string]any) (any, error)

// Entry is a registered app.
type Entry struct {
	Name    string
	Fn      Fn
	Version string // bumping invalidates memoized results, like editing a body
}

// BodyHash returns the hash that memoization uses in its lookup key. It
// plays the role of Parsl's hash of the function body: Go cannot hash
// compiled code, so the (name, version) pair is hashed instead, and changing
// Version models editing the function.
func (e Entry) BodyHash() string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(e.Name))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(e.Version))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Registry maps app names to executable functions. Workers hold a registry
// mirroring the client's; a task referencing an unregistered name fails with
// a descriptive error (the analogue of an ImportError on a Parsl worker).
type Registry struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]Entry)}
}

// defaultVersion is the app version implied when none is given; it feeds
// the memoization body hash, so every registration path must share it.
const defaultVersion = "v1"

// Register adds an app under name. Duplicate names are rejected so that a
// memoization key can never silently refer to two different functions.
func (r *Registry) Register(name string, fn Fn) error {
	return r.register(name, defaultVersion, fn, false)
}

// RegisterVersion adds an app with an explicit version string.
func (r *Registry) RegisterVersion(name, version string, fn Fn) error {
	return r.register(name, version, fn, false)
}

// RegisterIfAbsent registers name unless an entry already exists, in one
// critical section. Callers that would otherwise Lookup-then-Register (the
// DFK's lazily created internal apps, e.g. the stage-in transfer task) use
// this to stay atomic under concurrent submission.
func (r *Registry) RegisterIfAbsent(name string, fn Fn) error {
	return r.register(name, defaultVersion, fn, true)
}

// register validates and inserts under the lock; ifAbsent turns a
// duplicate into a no-op instead of an error.
func (r *Registry) register(name, version string, fn Fn, ifAbsent bool) error {
	if name == "" {
		return fmt.Errorf("serialize: empty app name")
	}
	if fn == nil {
		return fmt.Errorf("serialize: nil fn for app %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		if ifAbsent {
			return nil
		}
		return fmt.Errorf("serialize: app %q already registered", name)
	}
	r.entries[name] = Entry{Name: name, Fn: fn, Version: version}
	return nil
}

// Lookup returns the entry for name.
func (r *Registry) Lookup(name string) (Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// Names returns the sorted registered app names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TaskMsg is the on-the-wire form of a task: app name plus fully resolved
// arguments (futures have been replaced by their values before encoding).
// Priority carries the per-call dispatch priority across the submission
// boundary so remote queues can honor it too.
type TaskMsg struct {
	ID       int64
	App      string
	Args     []any
	Kwargs   map[string]any
	Priority int
}

// ResultMsg carries a task result back from a worker. Err is a string because
// error values do not gob-encode portably; the empty string means success.
type ResultMsg struct {
	ID       int64
	Value    any
	Err      string
	WorkerID string
}

func init() {
	// Base argument types every deployment can rely on. Composite user
	// types are added via RegisterType.
	gob.Register([]any{})
	gob.Register(map[string]any{})
	gob.Register(map[string]string{})
	gob.Register([]string{})
	gob.Register([]int{})
	gob.Register([]float64{})
	gob.Register([]byte{})
	gob.Register(time0{})
}

// time0 exists only to reserve a concrete type in gob's registry from this
// package's init; it is never sent.
type time0 struct{}

// RegisterType makes a concrete argument/result type encodable, mirroring
// how pickle needs importable classes.
func RegisterType(v any) { gob.Register(v) }

// EncodeTask serializes a TaskMsg.
func EncodeTask(m TaskMsg) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("serialize: encode task %d: %w", m.ID, err)
	}
	return buf.Bytes(), nil
}

// DecodeTask deserializes a TaskMsg.
func DecodeTask(b []byte) (TaskMsg, error) {
	var m TaskMsg
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
		return TaskMsg{}, fmt.Errorf("serialize: decode task: %w", err)
	}
	return m, nil
}

// EncodeResult serializes a ResultMsg.
func EncodeResult(m ResultMsg) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("serialize: encode result %d: %w", m.ID, err)
	}
	return buf.Bytes(), nil
}

// DecodeResult deserializes a ResultMsg.
func DecodeResult(b []byte) (ResultMsg, error) {
	var m ResultMsg
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
		return ResultMsg{}, fmt.Errorf("serialize: decode result: %w", err)
	}
	return m, nil
}

// DeepCopyArgs round-trips args through gob, producing the defensive copy
// handed to in-process executors so that apps cannot mutate caller state.
// Values that cannot be encoded (channels, funcs) produce an error.
func DeepCopyArgs(args []any, kwargs map[string]any) ([]any, map[string]any, error) {
	m := TaskMsg{Args: args, Kwargs: kwargs}
	b, err := EncodeTask(m)
	if err != nil {
		return nil, nil, err
	}
	out, err := DecodeTask(b)
	if err != nil {
		return nil, nil, err
	}
	return out.Args, out.Kwargs, nil
}

// ArgsHash produces a deterministic digest of the argument list for
// memoization keys. It gob-encodes the arguments (map iteration order is
// neutralized by hashing sorted kwarg keys with their individually encoded
// values) and hashes the bytes.
func ArgsHash(args []any, kwargs map[string]any) (string, error) {
	h := fnv.New64a()
	for i, a := range args {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&a); err != nil {
			return "", fmt.Errorf("serialize: hash arg %d: %w", i, err)
		}
		_, _ = h.Write(buf.Bytes())
		_, _ = h.Write([]byte{0})
	}
	keys := make([]string, 0, len(kwargs))
	for k := range kwargs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		_, _ = h.Write([]byte(k))
		_, _ = h.Write([]byte{1})
		v := kwargs[k]
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
			return "", fmt.Errorf("serialize: hash kwarg %q: %w", k, err)
		}
		_, _ = h.Write(buf.Bytes())
		_, _ = h.Write([]byte{2})
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}
