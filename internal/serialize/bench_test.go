package serialize

import (
	"fmt"
	"testing"
)

// benchBatch builds one batch of representative tasks: a few positional
// args of mixed type plus kwargs, the shape the paper's workloads submit.
func benchBatch(n int) ([]TaskMsg, [][]any, []map[string]any) {
	msgs := make([]TaskMsg, n)
	argLists := make([][]any, n)
	kwLists := make([]map[string]any, n)
	for i := range msgs {
		argLists[i] = []any{i, fmt.Sprintf("input-%04d", i), 2.5, []string{"a", "b", "c"}}
		kwLists[i] = map[string]any{"threads": 4, "mode": "fast"}
		msgs[i] = TaskMsg{ID: int64(i), App: "bench-app", Priority: 1,
			Args: argLists[i], Kwargs: kwLists[i]}
	}
	return msgs, argLists, kwLists
}

// BenchmarkSerializeRoundTrip measures the full serialization path of one
// 64-task batch from submission to executable arguments on a worker,
// including the memoization hash — everything the serialization layer does
// for a task, end to end.
//
//	oneshot-baseline   the pre-encode-once pipeline, retained for
//	                   comparison: per-argument hash encoders, a
//	                   validation encode per task, then a self-describing
//	                   one-shot encode/decode at each hop
//	                   (client → interchange → manager)
//	encode-once-streaming   the encode-once pipeline: arguments encoded
//	                   exactly once, hash taken over the cached bytes,
//	                   envelopes re-framed hop to hop on persistent
//	                   streams, arguments decoded once at the worker
//
// The acceptance bar for this layer is streaming ≥ 2× faster ns/op than
// the baseline in the same run.
func BenchmarkSerializeRoundTrip(b *testing.B) {
	const batchSize = 64

	b.Run("oneshot-baseline", func(b *testing.B) {
		msgs, argLists, kwLists := benchBatch(batchSize)
		oneShot := OneShotCodec{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Submit side: memo hash (per-argument encoders) and the
			// validation encode the old client performed per task.
			for j := range msgs {
				if _, err := ArgsHash(argLists[j], kwLists[j]); err != nil {
					b.Fatal(err)
				}
				if _, err := EncodeTask(msgs[j]); err != nil {
					b.Fatal(err)
				}
			}
			// Wire: client → interchange → manager, one self-describing
			// frame per hop, full re-encode in between.
			wires := make([]WireTask, len(msgs))
			for j := range msgs {
				w, err := msgs[j].Wire()
				if err != nil {
					b.Fatal(err)
				}
				wires[j] = w
				msgs[j].payload = nil // the old path cached nothing
			}
			var hop1 []byte
			if err := oneShot.EncodeFrame(wires, func(f []byte) error {
				hop1 = append(hop1[:0], f...)
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			var atIx []WireTask
			if err := NewStreamDecoder().DecodeFrame(hop1, &atIx); err != nil {
				b.Fatal(err)
			}
			var hop2 []byte
			if err := oneShot.EncodeFrame(atIx, func(f []byte) error {
				hop2 = append(hop2[:0], f...)
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			var atMgr []WireTask
			if err := NewStreamDecoder().DecodeFrame(hop2, &atMgr); err != nil {
				b.Fatal(err)
			}
			for j := range atMgr {
				if _, err := atMgr[j].Task(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("encode-once-streaming", func(b *testing.B) {
		clientEnc := NewStreamEncoder()
		ixDec := NewStreamDecoder()
		ixEnc := NewStreamEncoder()
		mgrDec := NewStreamDecoder()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			msgs, argLists, kwLists := benchBatch(batchSize)
			// Submit side: encode once, hash the bytes.
			wires := make([]WireTask, len(msgs))
			for j := range msgs {
				p, err := EncodeArgs(argLists[j], kwLists[j])
				if err != nil {
					b.Fatal(err)
				}
				_ = p.ArgsHash()
				msgs[j].AttachPayload(p)
				w, err := msgs[j].Wire()
				if err != nil {
					b.Fatal(err)
				}
				wires[j] = w
			}
			// Wire: same two hops, but envelopes ride persistent streams
			// and the argument bytes pass through untouched.
			var hop1 []byte
			if err := clientEnc.EncodeFrame(wires, func(f []byte) error {
				hop1 = append(hop1[:0], f...)
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			var atIx []WireTask
			if err := ixDec.DecodeFrame(hop1, &atIx); err != nil {
				b.Fatal(err)
			}
			var hop2 []byte
			if err := ixEnc.EncodeFrame(atIx, func(f []byte) error {
				hop2 = append(hop2[:0], f...)
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			var atMgr []WireTask
			if err := mgrDec.DecodeFrame(hop2, &atMgr); err != nil {
				b.Fatal(err)
			}
			for j := range atMgr {
				if _, err := atMgr[j].Task(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkArgsHash isolates the memoization hash: per-argument gob
// streamed straight into a pooled FNV hasher.
func BenchmarkArgsHash(b *testing.B) {
	args := []any{7, "input-0007", 2.5, []string{"a", "b", "c"}}
	kw := map[string]any{"threads": 4, "mode": "fast"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ArgsHash(args, kw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPayloadHash is the encode-once equivalent: EncodeArgs plus a
// hash sweep over the cached bytes (what the DFK submit path actually pays,
// since the same payload then serves the wire and the deep copy for free).
func BenchmarkPayloadHash(b *testing.B) {
	args := []any{7, "input-0007", 2.5, []string{"a", "b", "c"}}
	kw := map[string]any{"threads": 4, "mode": "fast"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := EncodeArgs(args, kw)
		if err != nil {
			b.Fatal(err)
		}
		_ = p.ArgsHash()
	}
}

// BenchmarkDeepCopy compares the two defensive-copy paths an in-process
// executor can take: the legacy encode+decode round trip versus a single
// decode of the encode-once payload.
func BenchmarkDeepCopy(b *testing.B) {
	args := []any{7, "input-0007", 2.5, []string{"a", "b", "c"}}
	kw := map[string]any{"threads": 4, "mode": "fast"}
	b.Run("encode-and-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := DeepCopyArgs(args, kw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-from-payload", func(b *testing.B) {
		p, err := EncodeArgs(args, kw)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := p.DecodeArgs(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStreamFrame isolates the codec itself on a result batch: a
// persistent stream versus a self-describing frame per message.
func BenchmarkStreamFrame(b *testing.B) {
	batch := make([]ResultMsg, 16)
	for i := range batch {
		batch[i] = ResultMsg{ID: int64(i), Value: i * 3, WorkerID: "w0"}
	}
	sink := func([]byte) error { return nil }
	b.Run("streaming", func(b *testing.B) {
		enc := NewStreamEncoder()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := enc.EncodeFrame(batch, sink); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("oneshot", func(b *testing.B) {
		enc := OneShotCodec{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := enc.EncodeFrame(batch, sink); err != nil {
				b.Fatal(err)
			}
		}
	})
}
