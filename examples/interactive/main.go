// Interactive computing: the materials-science use case from §2.1 —
// iterative surrogate-model development in a notebook-like loop. Requires
// low-latency responses while exploring (LLEX) and benefits from
// memoization: re-evaluating a configuration already tried returns from the
// memo table instead of recomputing (§4.6).
//
//	go run ./examples/interactive
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"time"

	"repro"

	"repro/internal/dfk"
	"repro/internal/executor"
	"repro/internal/executor/llex"
	"repro/internal/simnet"
)

func main() {
	reg := parsl.NewRegistry()
	ex := llex.New(llex.Config{
		Label:     "llex",
		Transport: simnet.Midway(),
		Registry:  reg,
		Workers:   4,
	})
	d, err := parsl.New(dfk.Config{
		Registry:  reg,
		Executors: []executor.Executor{ex},
		Memoize:   true, // the notebook pattern: re-run cells freely
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Shutdown()

	// Train-and-score a stopping-power surrogate for one hyperparameter
	// configuration. Deterministic in its arguments, hence memoizable.
	evaluate, err := d.PythonApp("evaluate_surrogate", func(args []any, _ map[string]any) (any, error) {
		degree := args[0].(int)
		ridge := args[1].(float64)
		// Synthetic "DFT data" fit: error decreases with degree, rises
		// again from overfitting, regularization softens it.
		bias := 1.0 / float64(degree)
		variance := 0.02 * float64(degree*degree) / (1 + 10*ridge)
		time.Sleep(5 * time.Millisecond) // the TD-DFT-surrogate training cost
		return bias + variance, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// The researcher's exploration loop: sweep, inspect, refine — ordinary
	// Go control flow steering parallel execution (§2.2: "a simple if
	// statement suffices").
	type config struct {
		degree int
		ridge  float64
	}
	best := config{}
	bestErr := math.Inf(1)

	sweep := func(cfgs []config) {
		futs := make([]*parsl.Future, len(cfgs))
		start := time.Now()
		for i, c := range cfgs {
			// Interactive sweeps are deadline-bound: a config that cannot
			// train within a second is abandoned, not waited on.
			futs[i] = evaluate.Submit(context.Background(), []any{c.degree, c.ridge},
				parsl.WithTimeout(time.Second))
		}
		for i, f := range futs {
			v, err := f.Result()
			if errors.Is(err, parsl.ErrTaskTimeout) {
				continue // too slow for the interactive budget: skip, don't abort
			}
			if err != nil {
				log.Fatal(err)
			}
			if e := v.(float64); e < bestErr {
				bestErr, best = e, cfgs[i]
			}
		}
		fmt.Printf("  swept %d configs in %v (interactive-grade)\n",
			len(cfgs), time.Since(start).Round(time.Millisecond))
	}

	fmt.Println("round 1: coarse sweep")
	var round1 []config
	for deg := 1; deg <= 8; deg++ {
		round1 = append(round1, config{deg, 0.1})
	}
	sweep(round1)
	fmt.Printf("  best so far: degree=%d ridge=%.2f err=%.4f\n", best.degree, best.ridge, bestErr)

	fmt.Println("round 2: refine regularization around the winner")
	var round2 []config
	for _, r := range []float64{0.01, 0.05, 0.1, 0.2, 0.5} {
		round2 = append(round2, config{best.degree, r})
	}
	sweep(round2) // (best.degree, 0.1) repeats round 1: memo hit, no recompute

	fmt.Println("round 3: re-run the whole sweep (notebook cell re-execution)")
	sweep(append(round1, round2...)) // fully memoized: near-instant

	hits, misses := d.Memoizer().Stats()
	fmt.Printf("final model: degree=%d ridge=%.2f err=%.4f\n", best.degree, best.ridge, bestErr)
	fmt.Printf("memoization: %d hits, %d misses — cells re-ran for free\n", hits, misses)
}
