// Monte-Carlo π: the canonical map-reduce composition (§3.6's map-reduce
// pattern) — a wide map of sampling tasks reduced by a single aggregation,
// spread at random across two executors (§4.1: executor chosen at random
// when multiple are configured and no hint is given).
//
//	go run ./examples/montecarlo
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"

	"repro/internal/dfk"
	"repro/internal/executor"
	"repro/internal/executor/htex"
	"repro/internal/executor/threadpool"
	"repro/internal/provider"
	"repro/internal/simnet"
)

func main() {
	reg := parsl.NewRegistry()
	tp := threadpool.New("threads", 4, reg)
	hx := htex.New(htex.Config{
		Label:      "htex",
		Transport:  simnet.NewNetwork(0),
		Registry:   reg,
		Provider:   provider.NewLocal(provider.Config{NodesPerBlock: 2}),
		InitBlocks: 1,
		Manager:    htex.ManagerConfig{Workers: 2},
	})
	// RetainRecords keeps terminal task records introspectable: the spread
	// report below reads each task's executor label after the drain.
	d, err := parsl.New(dfk.Config{Registry: reg, Executors: []executor.Executor{tp, hx}, RetainRecords: true})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Shutdown()

	sample, err := d.PythonApp("sample", func(args []any, _ map[string]any) (any, error) {
		seed := int64(args[0].(int))
		n := args[1].(int)
		rng := rand.New(rand.NewSource(seed))
		in := 0
		for i := 0; i < n; i++ {
			x, y := rng.Float64(), rng.Float64()
			if x*x+y*y <= 1 {
				in++
			}
		}
		return in, nil
	})
	must(err)

	reduce, err := d.PythonApp("reduce", func(args []any, _ map[string]any) (any, error) {
		total := 0
		for _, v := range args[0].([]any) {
			total += v.(int)
		}
		return total, nil
	})
	must(err)

	const tasks = 64
	const perTask = 100_000
	ctx := context.Background()
	futs := make([]any, tasks)
	for i := 0; i < tasks; i++ {
		futs[i] = sample.Submit(ctx, []any{i, perTask})
	}
	// The reduction gets a higher priority than the fan-out: once its inputs
	// resolve it jumps any still-queued sampling work.
	v, err := reduce.Submit(ctx, []any{futs}, parsl.WithPriority(10)).ResultCtx(ctx)
	must(err)

	inside := v.(int)
	pi := 4 * float64(inside) / float64(tasks*perTask)
	fmt.Printf("pi ≈ %.5f from %d samples across %d tasks\n", pi, tasks*perTask, tasks)

	// Show the random multi-executor spread (§4.1).
	spread := map[string]int{}
	for _, rec := range d.Graph().Tasks() {
		spread[rec.Executor()]++
	}
	fmt.Printf("executor spread: %v\n", spread)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
