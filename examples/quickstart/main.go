// Quickstart: the §3.1 programming model — Python-style apps, Bash apps,
// futures, and implicit dataflow from passing futures between apps.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	ctx := context.Background()
	// A DFK over a local 4-worker thread pool: the laptop configuration.
	d, err := parsl.NewLocal(4)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Shutdown()

	// @python_app equivalent (§3.1.1).
	hello, err := d.PythonApp("hello1", func(args []any, _ map[string]any) (any, error) {
		return fmt.Sprintf("Hello %v", args[0]), nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// @bash_app equivalent: the function renders a shell fragment; the
	// result carries the UNIX exit code.
	hello2, err := d.BashApp("hello2", func(args []any, _ map[string]any) (string, error) {
		return fmt.Sprintf("echo 'Hello %v'", args[0]), nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Submission returns futures immediately (§3.1.2). The context-aware
	// entry point accepts per-call options; canceling ctx would cancel the
	// task and fail its dependents.
	f1 := hello.Submit(ctx, []any{"World"})
	f2 := hello2.Submit(ctx, []any{"World"})

	// The typed adapter trades `any` for compile-time types.
	greet := parsl.Typed1[string, string](hello)
	if msg, err := greet(ctx, "typed World").Result(ctx); err == nil {
		fmt.Println("typed app:", msg) // msg is a string, no assertion
	}

	v, err := f1.ResultCtx(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("python app:", v)
	if bv, err := f2.Result(); err != nil {
		fmt.Println("bash app unavailable on this host:", err)
	} else {
		fmt.Printf("bash app: exit code %d\n", bv.(parsl.BashResult).ExitCode)
	}

	// Compositionality (§3.3): passing futures creates dependencies; the
	// DFK runs this diamond with maximum available parallelism.
	add, err := d.PythonApp("add", func(args []any, _ map[string]any) (any, error) {
		sum := 0
		for _, a := range args {
			sum += a.(int)
		}
		return sum, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// The high-priority branch jumps ahead when an executor lane backs up.
	root := add.Submit(ctx, []any{1})
	left := add.Submit(ctx, []any{root, 10}, parsl.WithPriority(1))
	right := add.Submit(ctx, []any{root, 100})
	joined := add.Submit(ctx, []any{left, right})
	total, err := joined.ResultCtx(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("diamond dataflow result:", total) // (1+10)+(1+100) = 112
	// Terminal records are pruned and recycled as tasks settle, so the live
	// graph is empty after the drain; RecycledNodes is the cumulative count.
	d.WaitAll()
	fmt.Println("tasks executed:", d.Graph().RecycledNodes(), "live records:", d.Graph().LiveNodes())
}
