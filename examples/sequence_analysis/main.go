// Sequence analysis: the SwiftSeq-style many-task DNA pipeline from §2.1 —
// a dataflow of align → sort → variant-call stages per sample, joined by a
// cohort merge, running on HTEX with retries and checkpointing. Files flow
// between stages through the data manager; one flaky sample exercises the
// fault-tolerance path (§3.7).
//
//	go run ./examples/sequence_analysis
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro"

	"repro/internal/data"
	"repro/internal/dfk"
	"repro/internal/executor"
	"repro/internal/executor/htex"
	"repro/internal/provider"
	"repro/internal/simnet"
)

var flakyOnce atomic.Bool

func main() {
	workDir, err := os.MkdirTemp("", "swiftseq")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workDir)

	dm, err := data.NewManager(filepath.Join(workDir, "staging"))
	if err != nil {
		log.Fatal(err)
	}
	reg := parsl.NewRegistry()
	ex := htex.New(htex.Config{
		Label:      "htex",
		Transport:  simnet.NewNetwork(0),
		Registry:   reg,
		Provider:   provider.NewLocal(provider.Config{NodesPerBlock: 4}),
		InitBlocks: 1,
		Manager:    htex.ManagerConfig{Workers: 2, Prefetch: 2},
	})
	d, err := parsl.New(dfk.Config{
		Registry:    reg,
		Executors:   []executor.Executor{ex},
		Retries:     2, // long-running genomics tools need retry on transient failure
		Memoize:     true,
		Checkpoint:  filepath.Join(workDir, "checkpoint.jsonl"),
		DataManager: dm,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Shutdown()

	// Pipeline stages. Each tool reads its input file and writes an output
	// file; Parsl tracks the files as dataflow edges.
	align, err := d.PythonApp("align", func(args []any, _ map[string]any) (any, error) {
		sample := args[0].(*data.File)
		reads, err := os.ReadFile(sample.LocalPath())
		if err != nil {
			return nil, err
		}
		// A transient infrastructure failure on the first attempt of one
		// sample; the DFK retry budget absorbs it.
		if strings.Contains(sample.Filename(), "sample2") && !flakyOnce.Swap(true) {
			return nil, fmt.Errorf("node scratch filled up (transient)")
		}
		time.Sleep(10 * time.Millisecond) // alignment is minutes-to-hours in production
		out := sample.LocalPath() + ".bam"
		if err := os.WriteFile(out, []byte("BAM:"+string(reads)), 0o644); err != nil {
			return nil, err
		}
		return out, nil
	})
	must(err)

	sortApp, err := d.PythonApp("sort", func(args []any, _ map[string]any) (any, error) {
		bam := args[0].(string)
		payload, err := os.ReadFile(bam)
		if err != nil {
			return nil, err
		}
		out := bam + ".sorted"
		return out, os.WriteFile(out, []byte("SORTED:"+string(payload)), 0o644)
	})
	must(err)

	call, err := d.PythonApp("variant_call", func(args []any, _ map[string]any) (any, error) {
		sorted := args[0].(string)
		payload, err := os.ReadFile(sorted)
		if err != nil {
			return nil, err
		}
		variants := fmt.Sprintf("VCF(%d bytes input)", len(payload))
		return variants, nil
	})
	must(err)

	merge, err := d.PythonApp("cohort_merge", func(args []any, _ map[string]any) (any, error) {
		vcfs := args[0].([]any)
		return fmt.Sprintf("cohort of %d VCFs", len(vcfs)), nil
	})
	must(err)

	// Create input samples (thousands of multi-GB genomes in production).
	ctx := context.Background()
	const samples = 8
	var vcfFutures []any
	for i := 0; i < samples; i++ {
		path := filepath.Join(workDir, fmt.Sprintf("sample%d.fastq", i))
		if err := os.WriteFile(path, []byte(fmt.Sprintf("reads-for-sample-%d", i)), 0o644); err != nil {
			log.Fatal(err)
		}
		sample := parsl.MustFile(path)
		// Chain per-sample stages by passing futures (§3.3); the samples
		// themselves run concurrently. Retries are tuned per stage: aligners
		// flake, so alignment gets one attempt beyond the DFK-wide budget.
		bam := align.Submit(ctx, []any{sample}, parsl.WithRetries(3))
		sorted := sortApp.Submit(ctx, []any{bam})
		vcfFutures = append(vcfFutures, call.Submit(ctx, []any{sorted}))
	}
	cohort, err := merge.Submit(ctx, []any{vcfFutures}).ResultCtx(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pipeline complete:", cohort)

	summary := d.Summary()
	fmt.Printf("tasks: %v (one align retried transparently)\n", summary)
	hits, misses := d.Memoizer().Stats()
	fmt.Printf("memo: %d hits, %d misses; checkpoint persisted for restart-without-rerun\n", hits, misses)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
