// ML inference: the DLHub-style FaaS workload from §2.1 — a bag of
// short-duration inference requests needing low-latency responses, served by
// the Low Latency Executor. Model weights are fetched once over HTTP through
// the data manager; thousands of sub-millisecond scoring requests then fan
// out across directly connected LLEX workers, and the tail latency is
// reported.
//
//	go run ./examples/ml_inference
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"repro"

	"repro/internal/data"
	"repro/internal/dfk"
	"repro/internal/executor"
	"repro/internal/executor/llex"
	"repro/internal/simnet"
)

func main() {
	// A "model repository" service publishing weights.
	modelServer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Weights: a tiny linear model w=(2, -1), b=0.5 as CSV.
		_, _ = w.Write([]byte("2.0,-1.0,0.5"))
	}))
	defer modelServer.Close()

	staging, err := os.MkdirTemp("", "dlhub")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(staging)
	dm, err := data.NewManager(staging)
	if err != nil {
		log.Fatal(err)
	}

	reg := parsl.NewRegistry()
	ex := llex.New(llex.Config{
		Label:     "llex",
		Transport: simnet.Midway(),
		Registry:  reg,
		Workers:   4, // LLEX assumes a fixed worker set (§4.3.3)
	})
	d, err := parsl.New(dfk.Config{
		Registry:    reg,
		Executors:   []executor.Executor{ex},
		DataManager: dm,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Shutdown()

	// The inference app: load (staged) weights, score a feature vector.
	infer, err := d.PythonApp("infer", func(args []any, _ map[string]any) (any, error) {
		weights := args[0].(*data.File)
		raw, err := os.ReadFile(weights.LocalPath())
		if err != nil {
			return nil, err
		}
		var w1, w2, b float64
		if _, err := fmt.Sscanf(string(raw), "%f,%f,%f", &w1, &w2, &b); err != nil {
			return nil, err
		}
		x1 := args[1].(float64)
		x2 := args[2].(float64)
		score := w1*x1 + w2*x2 + b
		return score > 0, nil // binary classification
	})
	if err != nil {
		log.Fatal(err)
	}

	weights := parsl.MustFile(modelServer.URL + "/models/classifier/weights.csv")

	// Stage the weights once via a warm-up request. The typed adapter gives
	// each serving request a compile-time bool result.
	ctx := context.Background()
	classify := parsl.Typed3[*parsl.File, float64, float64, bool](infer)
	if _, err := classify(ctx, weights, 0.0, 0.0).Result(ctx); err != nil {
		log.Fatal(err)
	}

	// Closed-loop clients, the FaaS serving pattern: each researcher's
	// session issues sequential requests, many sessions in parallel, so
	// per-request latency reflects round trips, not burst queueing.
	const clients = 4
	const perClient = 100
	const requests = clients * perClient
	var mu sync.Mutex
	lats := make([]time.Duration, 0, requests)
	positives := 0
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				x1 := float64((c*perClient+i)%17) / 4.0
				x2 := float64((c*perClient+i)%11) / 3.0
				at := time.Now()
				positive, err := classify(ctx, weights, x1, x2).Result(ctx)
				if err != nil {
					log.Fatal(err)
				}
				mu.Lock()
				lats = append(lats, time.Since(at))
				if positive {
					positives++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	total := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

	fmt.Printf("served %d inference requests in %v (%.0f req/s)\n",
		requests, total.Round(time.Millisecond), float64(requests)/total.Seconds())
	fmt.Printf("positive classifications: %d\n", positives)
	fmt.Printf("latency p50=%v p95=%v p99=%v\n",
		lats[requests/2].Round(time.Microsecond),
		lats[requests*95/100].Round(time.Microsecond),
		lats[requests*99/100].Round(time.Microsecond))
	fmt.Println("executor guideline check (Fig. 7):")
	ok, warn := parsl.CheckExecutorFit("llex", 1, time.Millisecond)
	fmt.Printf("  llex on 1 node: fit=%v %s\n", ok, warn)
}
