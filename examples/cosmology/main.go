// Cosmology: the LSST image-simulation workload from §2.1 — thousands of
// catalog-driven sensor simulations with unpredictable task durations,
// bundled into node-sized chunks, executed on HTEX over a simulated batch
// cluster with elastic block scaling (§4.4). The program rebalances work by
// grouping tasks into bundles ("e.g., 64 tasks for a 64-core processor") and
// reports achieved utilization.
//
//	go run ./examples/cosmology
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"

	"repro/internal/cluster"
	"repro/internal/dfk"
	"repro/internal/executor"
	"repro/internal/executor/htex"
	"repro/internal/provider"
	"repro/internal/simnet"
	"repro/internal/strategy"
	"repro/internal/workload"
)

func main() {
	// A simulated Blue Waters-like allocation: 16 nodes, 1 worker each.
	cl, err := cluster.New(cluster.Config{
		Name: "bluewaters", Nodes: 16, CoresPerNode: 32,
		QueueDelay: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	reg := parsl.NewRegistry()
	prov := provider.NewSlurm(cl, provider.Config{NodesPerBlock: 4})
	ex := htex.New(htex.Config{
		Label:      "htex",
		Transport:  simnet.BlueWaters(),
		Registry:   reg,
		Provider:   prov,
		InitBlocks: 1,
		Manager:    htex.ManagerConfig{Workers: 1, Prefetch: 2},
	})
	d, err := parsl.New(dfk.Config{Registry: reg, Executors: []executor.Executor{ex}})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Shutdown()

	// Elasticity: grow/shrink blocks with workload pressure.
	ctrl := strategy.NewController(ex, strategy.Simple{Parallelism: 1},
		strategy.ControllerConfig{
			Interval:        25 * time.Millisecond,
			WorkersPerBlock: 4,
			MinBlocks:       1,
			MaxBlocks:       4,
			ScaleInHoldoff:  100 * time.Millisecond,
		})
	ctrl.Start()
	defer ctrl.Stop()

	// Stage 1: build instance catalogs (10 000+ in production; scaled here).
	catalog, err := d.PythonApp("make_catalog", func(args []any, _ map[string]any) (any, error) {
		id := args[0].(int)
		rng := rand.New(rand.NewSource(int64(id)))
		objects := 50 + rng.Intn(200) // object count drives simulation cost
		return objects, nil
	})
	must(err)

	// Stage 2: simulate one sensor-image bundle. Duration depends on the
	// number of objects — the imbalance the bundling mitigates.
	simulate, err := d.PythonApp("simulate_bundle", func(args []any, _ map[string]any) (any, error) {
		totalObjects := 0
		for _, v := range args[0].([]any) {
			totalObjects += v.(int)
		}
		time.Sleep(time.Duration(totalObjects/20) * time.Millisecond)
		return totalObjects, nil
	})
	must(err)

	const catalogs = 256
	const bundleSize = 16 // tasks per bundle, sized to the node

	start := time.Now()
	ctx := context.Background()
	catalogFuts := make([]*parsl.Future, catalogs)
	for i := 0; i < catalogs; i++ {
		catalogFuts[i] = catalog.Submit(ctx, []any{i})
	}

	// Rebalance: group catalogs into bundles so each dispatch matches a
	// node's capacity (§2.1).
	bundles := workload.CosmologyBundles(catalogs, bundleSize)
	simFuts := make([]*parsl.Future, len(bundles))
	for bi, bundle := range bundles {
		group := make([]any, len(bundle))
		for j, idx := range bundle {
			group[j] = catalogFuts[idx]
		}
		simFuts[bi] = simulate.Submit(ctx, []any{group})
	}

	totalObjects := 0
	for _, f := range simFuts {
		v, err := f.Result()
		if err != nil {
			log.Fatal(err)
		}
		totalObjects += v.(int)
	}
	elapsed := time.Since(start)

	fmt.Printf("simulated %d catalogs (%d objects) in %d bundles of %d in %v\n",
		catalogs, totalObjects, len(bundles), bundleSize, elapsed.Round(time.Millisecond))
	fmt.Printf("scaling events: %d; final blocks: %d\n", len(ctrl.Events()), ex.ActiveBlocks())
	st := cl.Stats()
	fmt.Printf("cluster: %d busy / %d free nodes at exit\n", st.BusyNodes, st.FreeNodes)
	fmt.Printf("recommended executor for this shape: %s\n",
		parsl.RecommendExecutor(8000, time.Minute, false))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
