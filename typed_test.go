package parsl_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	parsl "repro"
)

func TestTypedSubmission(t *testing.T) {
	d, err := parsl.NewLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	hello, err := d.PythonApp("typed-hello", func(args []any, _ map[string]any) (any, error) {
		return "Hello " + args[0].(string), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	greet := parsl.Typed1[string, string](hello)
	msg, err := greet(ctx, "World").Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if msg != "Hello World" { // msg is a string: no assertion needed
		t.Fatalf("msg = %q", msg)
	}

	// Wrong result type surfaces as an error, not a panic.
	asInt := parsl.Typed1[string, int](hello)
	if _, err := asInt(ctx, "World").Result(ctx); err == nil || !strings.Contains(err.Error(), "want int") {
		t.Fatalf("mistyped result error = %v", err)
	}
}

func TestTypedTwoArgsAndOptions(t *testing.T) {
	d, err := parsl.NewLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	add, err := d.PythonApp("typed-add", func(args []any, _ map[string]any) (any, error) {
		return args[0].(int) + args[1].(int), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sum := parsl.Typed2[int, int, int](add)
	v, err := sum(ctx, 2, 40, parsl.WithPriority(3)).Result(ctx)
	if err != nil || v != 42 {
		t.Fatalf("sum = %v, %v", v, err)
	}
}

func TestTypedFutureCtxCancellation(t *testing.T) {
	d, err := parsl.NewLocal(1)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	block := make(chan struct{})
	defer close(block)
	slow, err := d.PythonApp("typed-slow", func([]any, map[string]any) (any, error) {
		<-block
		return "late", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	run := parsl.Typed0[string](slow)
	ctx, cancel := context.WithCancel(context.Background())
	fut := run(context.Background())
	cancel()
	if _, err := fut.Result(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Result under canceled ctx = %v, want context.Canceled", err)
	}
}

func TestSubmitCancellationFacade(t *testing.T) {
	d, err := parsl.NewLocal(1)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	dep := make(chan struct{})
	defer close(dep)
	gate, err := d.PythonApp("facade-gate", func([]any, map[string]any) (any, error) {
		<-dep
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sleepy, err := d.PythonApp("facade-task", func([]any, map[string]any) (any, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The gate occupies the single worker; the victim waits behind it.
	g := gate.Call()
	ctx, cancel := context.WithCancel(context.Background())
	victim := sleepy.Submit(ctx, nil)
	cancel()
	if _, err := victim.Result(); !errors.Is(err, parsl.ErrSubmissionCanceled) {
		t.Fatalf("victim error = %v, want ErrSubmissionCanceled", err)
	}
	_ = g
}
