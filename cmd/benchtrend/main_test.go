package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeArtifact(t *testing.T, dir, name, content string) {
	t.Helper()
	sub := filepath.Join(dir, strings.TrimSuffix(name, ".json"))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBenchtrendShapesAndGates(t *testing.T) {
	dir := t.TempDir()
	// benchjson array shape (matrix-suffixed directory).
	writeArtifact(t, dir, "BENCH_dfk-go1.24.json",
		`[{"name":"BenchmarkDFKSubmission","iterations":100,"ns_per_op":5000,"metrics":{"allocs/op":9}}]`)
	// scenario-row array shape: Failed aggregates by max across seeds.
	writeArtifact(t, dir, "BENCH_health.json",
		`[{"seed":1,"Done":160,"Failed":0},{"seed":2,"Done":160,"Failed":2}]`)
	// object shape with nested arrays and a hardware-gated bar.
	writeArtifact(t, dir, "BENCH_shard.json",
		`{"scale":0.9,"bar":1.8,"bar_applied":false,"cores":1,
		  "failover":[{"seed":1,"Done":160,"Kills":1}],
		  "scaling":[{"shards":1,"tasks_per_sec":8000}]}`)

	rows, _, err := collect(dir)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]row{}
	for _, r := range rows {
		byKey[r.Artifact+":"+r.Metric] = r
	}
	if r := byKey["BENCH_dfk:BenchmarkDFKSubmission:allocs/op"]; r.Value != 9 {
		t.Fatalf("dfk allocs row = %+v", r)
	}
	if r := byKey["BENCH_health:max:Failed"]; r.Value != 2 {
		t.Fatalf("health max:Failed = %+v (want max across rows, 2)", r)
	}
	if r := byKey["BENCH_shard:scale"]; r.Value != 0.9 || !r.Advisory {
		t.Fatalf("shard scale = %+v (want advisory on bar_applied=false)", r)
	}
	if r := byKey["BENCH_shard:failover:max:Done"]; r.Value != 160 {
		t.Fatalf("shard failover max:Done = %+v", r)
	}

	pol := policy{
		Require: []string{"BENCH_dfk", "BENCH_shard", "BENCH_graph"},
		Caps:    map[string]float64{"BENCH_health:max:Failed": 0},
		Mins:    map[string]float64{"BENCH_shard:scale": 1.8},
	}
	report, failed := evaluate(rows, nil, pol)
	if !failed {
		t.Fatal("evaluate passed though Failed=2 breaks its cap and BENCH_graph is missing")
	}
	for _, want := range []string{
		"FAIL", "max:Failed", "required artifact missing", "advisory",
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	// The advisory scale row must be skipped, not failed.
	for _, line := range strings.Split(report, "\n") {
		if strings.Contains(line, "scale") && strings.HasPrefix(line, "FAIL") {
			t.Fatalf("advisory bar failed the run: %s", line)
		}
	}
}

func TestBenchtrendCleanRun(t *testing.T) {
	dir := t.TempDir()
	writeArtifact(t, dir, "BENCH_dfk.json",
		`[{"name":"BenchmarkDFKSubmission","iterations":100,"ns_per_op":5000,"metrics":{"allocs/op":10}}]`)
	rows, _, err := collect(dir)
	if err != nil {
		t.Fatal(err)
	}
	pol := policy{
		Require: []string{"BENCH_dfk"},
		Caps:    map[string]float64{"BENCH_dfk:BenchmarkDFKSubmission:allocs/op": 10},
	}
	report, failed := evaluate(rows, nil, pol)
	if failed {
		t.Fatalf("clean run failed:\n%s", report)
	}
	if !strings.Contains(report, "bench trend: ok") {
		t.Fatalf("report: %s", report)
	}
}

// TestBenchtrendSkipMarkerVsMissing pins the bugfix: a required artifact
// whose job declared itself hardware-gated (SKIP_<artifact>.json) reports a
// skip and passes; a required artifact with neither file still fails.
func TestBenchtrendSkipMarkerVsMissing(t *testing.T) {
	dir := t.TempDir()
	writeArtifact(t, dir, "BENCH_dfk.json",
		`[{"name":"BenchmarkDFKSubmission","iterations":100,"ns_per_op":5000,"metrics":{"allocs/op":9}}]`)
	writeArtifact(t, dir, "SKIP_BENCH_shard.json",
		`{"reason":"needs >= 4 cores to run the shard routers in parallel"}`)

	rows, skips, err := collect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if skips["BENCH_shard"] == "" {
		t.Fatalf("skip marker not collected: %v", skips)
	}

	pol := policy{Require: []string{"BENCH_dfk", "BENCH_shard"}}
	report, failed := evaluate(rows, skips, pol)
	if failed {
		t.Fatalf("skip marker treated as a failure:\n%s", report)
	}
	if !strings.Contains(report, "skipped (hardware)") || !strings.Contains(report, "4 cores") {
		t.Fatalf("report missing the skip line with its reason:\n%s", report)
	}

	// Without the marker the same gap is a hard failure.
	report, failed = evaluate(rows, nil, pol)
	if !failed || !strings.Contains(report, "required artifact missing") {
		t.Fatalf("missing required artifact did not fail:\n%s", report)
	}

	// A bare marker (no reason) still counts as a skip.
	if got := skipReason([]byte("{}")); got != "no reason given" {
		t.Fatalf("skipReason({}) = %q", got)
	}
}

func TestArtifactName(t *testing.T) {
	for path, want := range map[string]string{
		"artifacts/BENCH_dfk-go1.24/BENCH_dfk.json": "BENCH_dfk",
		"BENCH_shard.json":                          "BENCH_shard",
		"x/BENCH_serialize-go1.25.json":             "BENCH_serialize",
	} {
		if got := artifactName(path); got != want {
			t.Errorf("artifactName(%q) = %q, want %q", path, got, want)
		}
	}
}
