// Command benchtrend is the CI bench-trend gate: it walks an artifact
// directory for BENCH_*.json files (the per-job benchmark artifacts), prints
// one merged summary table of every metric they carry, and enforces the
// checked-in policy (bench/trend.json) — required artifacts present, capped
// metrics under their caps, floored metrics above their floors. A violation
// exits non-zero with the offending rows marked FAIL, so a perf or
// invariant regression fails the PR with a readable diff instead of
// vanishing into one job's logs.
//
//	benchtrend -dir artifacts -policy bench/trend.json
//
// Three artifact shapes are understood:
//
//   - benchjson arrays ([{name, ns_per_op, metrics}]): each benchmark's
//     ns/op and reported metrics become rows keyed
//     "<artifact>:<Benchmark>:<unit>".
//   - arrays of scenario rows (health, shard failover): numeric fields are
//     aggregated by max across rows — "max over seeds" is the gating view
//     for counters like Failed.
//   - plain objects (graph, shard): top-level numeric fields become rows;
//     nested arrays aggregate as above. An object carrying
//     "bar_applied": false marks its file advisory — hardware-gated bars
//     (the shard scaling ratio needs real cores) are reported but not
//     enforced there.
//
// A job whose benchmark cannot run on the current hardware writes a
// SKIP_<artifact>.json marker ({"reason": "..."}) instead of the artifact.
// A required artifact with a marker reports "skip" with the reason; a
// required artifact with neither file is a hard FAIL — "didn't run because
// the hardware can't" and "silently never produced" are different verdicts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// policy is the checked-in gate (bench/trend.json).
type policy struct {
	// Require lists artifact basenames (no extension) that must be present;
	// a matrix suffix ("BENCH_dfk-go1.24/...") still satisfies its base name.
	Require []string `json:"require"`
	// Caps maps "<artifact>:<metric>" to a maximum (inclusive).
	Caps map[string]float64 `json:"caps"`
	// Mins maps "<artifact>:<metric>" to a minimum (inclusive).
	Mins map[string]float64 `json:"mins"`
}

// row is one discovered metric.
type row struct {
	Artifact string // basename without .json, matrix suffix stripped
	Metric   string // "BenchmarkDFKSubmission:allocs/op", "scale", "max:Failed"
	Value    float64
	Advisory bool // bar_applied=false in the source file
	Path     string
}

func main() {
	dir := flag.String("dir", ".", "directory walked recursively for BENCH_*.json files")
	policyPath := flag.String("policy", "bench/trend.json", "policy file (caps, floors, required artifacts)")
	flag.Parse()

	pol, err := loadPolicy(*policyPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtrend:", err)
		os.Exit(1)
	}
	rows, skips, err := collect(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtrend:", err)
		os.Exit(1)
	}
	report, failed := evaluate(rows, skips, pol)
	fmt.Print(report)
	if failed {
		os.Exit(1)
	}
}

func loadPolicy(path string) (policy, error) {
	var pol policy
	b, err := os.ReadFile(path)
	if err != nil {
		return pol, fmt.Errorf("policy %s: %w", path, err)
	}
	if err := json.Unmarshal(b, &pol); err != nil {
		return pol, fmt.Errorf("policy %s: %w", path, err)
	}
	return pol, nil
}

// collect walks dir for BENCH_*.json and extracts every numeric metric. It
// also gathers SKIP_<artifact>.json markers — a job declaring its benchmark
// hardware-gated off — as artifact→reason, so evaluate can tell a skipped
// required artifact from one that silently never ran.
func collect(dir string) ([]row, map[string]string, error) {
	var rows []row
	skips := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() || !strings.HasSuffix(name, ".json") {
			return nil
		}
		if strings.HasPrefix(name, "SKIP_") {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			art := artifactName(strings.TrimPrefix(name, "SKIP_"))
			skips[art] = skipReason(b)
			return nil
		}
		if !strings.HasPrefix(name, "BENCH_") {
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		fileRows, err := extract(artifactName(path), b)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for i := range fileRows {
			fileRows[i].Path = path
		}
		rows = append(rows, fileRows...)
		return nil
	})
	return rows, skips, err
}

// skipReason extracts the marker's "reason" field; malformed or bare
// markers still count as skips, just without a stated cause.
func skipReason(b []byte) string {
	var m struct {
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(b, &m); err == nil && m.Reason != "" {
		return m.Reason
	}
	return "no reason given"
}

// artifactName normalizes a path to its artifact base name: the file's
// basename without .json, falling back to the parent directory when the
// download step nested the file ("BENCH_dfk-go1.24/BENCH_dfk.json"), and
// with any "-suffix" matrix decoration stripped.
func artifactName(path string) string {
	base := strings.TrimSuffix(filepath.Base(path), ".json")
	if i := strings.IndexByte(base, '-'); i > 0 {
		base = base[:i]
	}
	return base
}

// extract parses one artifact into rows, dispatching on shape.
func extract(artifact string, data []byte) ([]row, error) {
	var any interface{}
	if err := json.Unmarshal(data, &any); err != nil {
		return nil, err
	}
	switch v := any.(type) {
	case []interface{}:
		return extractArray(artifact, "", v, false), nil
	case map[string]interface{}:
		return extractObject(artifact, v), nil
	default:
		return nil, nil
	}
}

// extractArray handles both benchjson arrays (rows carry "name") and
// scenario-row arrays (aggregated by max across rows).
func extractArray(artifact, prefix string, arr []interface{}, advisory bool) []row {
	var rows []row
	agg := map[string]float64{}
	for _, el := range arr {
		obj, ok := el.(map[string]interface{})
		if !ok {
			continue
		}
		if name, ok := obj["name"].(string); ok {
			// benchjson shape: one row per benchmark metric.
			if ns, ok := obj["ns_per_op"].(float64); ok {
				rows = append(rows, row{Artifact: artifact, Metric: join(prefix, name+":ns/op"), Value: ns, Advisory: advisory})
			}
			if ms, ok := obj["metrics"].(map[string]interface{}); ok {
				for unit, mv := range ms {
					if f, ok := mv.(float64); ok {
						rows = append(rows, row{Artifact: artifact, Metric: join(prefix, name+":"+unit), Value: f, Advisory: advisory})
					}
				}
			}
			continue
		}
		for k, mv := range obj {
			if f, ok := mv.(float64); ok {
				if cur, seen := agg[k]; !seen || f > cur {
					agg[k] = f
				}
			}
		}
	}
	for k, v := range agg {
		rows = append(rows, row{Artifact: artifact, Metric: join(prefix, "max:"+k), Value: v, Advisory: advisory})
	}
	return rows
}

func extractObject(artifact string, obj map[string]interface{}) []row {
	barSkipped := false
	if applied, ok := obj["bar_applied"].(bool); ok && !applied {
		barSkipped = true
	}
	// Only the hardware-gated scaling metrics go advisory when the file says
	// its bar was skipped; invariant counters (kills, completions) in the
	// same file are deterministic and stay enforced.
	advisory := func(key string) bool {
		return barSkipped && (key == "scale" || key == "scaling")
	}
	var rows []row
	for k, v := range obj {
		switch f := v.(type) {
		case float64:
			rows = append(rows, row{Artifact: artifact, Metric: k, Value: f, Advisory: advisory(k)})
		case []interface{}:
			rows = append(rows, extractArray(artifact, k, f, advisory(k))...)
		}
	}
	return rows
}

func join(prefix, s string) string {
	if prefix == "" {
		return s
	}
	return prefix + ":" + s
}

// evaluate renders the summary table and applies the policy. The returned
// report always contains every discovered metric — the table IS the trend
// record in the job log — with CAP/MIN annotations and a final verdict.
func evaluate(rows []row, skips map[string]string, pol policy) (string, bool) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Artifact != rows[j].Artifact {
			return rows[i].Artifact < rows[j].Artifact
		}
		return rows[i].Metric < rows[j].Metric
	})

	var b strings.Builder
	failed := false
	seen := map[string]bool{}
	fmt.Fprintf(&b, "%-8s %-16s %-52s %14s  %s\n", "verdict", "artifact", "metric", "value", "bound")
	for _, r := range rows {
		seen[r.Artifact] = true
		key := r.Artifact + ":" + r.Metric
		verdict, bound := "", ""
		if limit, ok := pol.Caps[key]; ok {
			bound = fmt.Sprintf("<= %g", limit)
			verdict = "ok"
			if r.Value > limit {
				verdict = "FAIL"
			}
		}
		if floor, ok := pol.Mins[key]; ok {
			bound = fmt.Sprintf(">= %g", floor)
			verdict = "ok"
			if r.Value < floor {
				verdict = "FAIL"
			}
		}
		if r.Advisory && verdict != "" {
			bound += " (advisory: bar not applied on this hardware)"
			verdict = "skip"
		}
		if verdict == "FAIL" {
			failed = true
		}
		fmt.Fprintf(&b, "%-8s %-16s %-52s %14.4g  %s\n", verdict, r.Artifact, r.Metric, r.Value, bound)
	}
	for _, req := range pol.Require {
		if seen[req] {
			continue
		}
		// A skip marker means the job ran and declared the benchmark
		// hardware-gated off — report it, don't fail it. No artifact and no
		// marker means the benchmark silently never produced: hard FAIL.
		if reason, ok := skips[req]; ok {
			fmt.Fprintf(&b, "%-8s %-16s %-52s %14s  required artifact skipped (hardware): %s\n", "skip", req, "-", "-", reason)
			continue
		}
		failed = true
		fmt.Fprintf(&b, "%-8s %-16s %-52s %14s  required artifact missing\n", "FAIL", req, "-", "-")
	}
	if failed {
		fmt.Fprintf(&b, "\nbench trend: REGRESSION — at least one bound violated or artifact missing\n")
	} else {
		fmt.Fprintf(&b, "\nbench trend: ok — %d metrics across %d artifacts within bounds\n", len(rows), len(seen))
	}
	return b.String(), failed
}
