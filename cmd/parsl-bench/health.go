package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/workload"
)

// runHealth drives the self-healing scenario across a seed matrix: repeated
// manager kills plus one poison task pinned to the HTEX pool. Each seed must
// uphold every retry-plane invariant — goodput recovers through breaker
// failover, the poison task quarantines after exactly N distinct manager
// kills, and no task is lost or double-delivered. A failing seed printed
// here is a complete reproduction recipe:
//
//	parsl-bench health -seed <s>
//	go test ./internal/workload/ -run TestHealthScenarioSeeds -race
func runHealth(seeds []int64, tasks int, jsonPath string) error {
	fmt.Printf("%d bulk tasks + 1 poison task per seed; seeds %v\n\n", tasks, seeds)
	fmt.Printf("%-8s %-6s %-6s %-6s %-7s %-9s %-9s %-12s %s\n",
		"verdict", "seed", "done", "kills", "poison", "backoffs", "retried", "maxlaunches", "elapsed")
	type row struct {
		Seed int64 `json:"seed"`
		workload.HealthResult
	}
	rows := make([]row, 0, len(seeds))
	failed := 0
	for _, seed := range seeds {
		res, err := workload.RunHealth(workload.HealthConfig{Seed: seed, Tasks: tasks})
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		// The fired-fault log is bulky and reproducible from the seed; keep
		// the JSON artifact focused on outcomes.
		res.Events = nil
		rows = append(rows, row{Seed: seed, HealthResult: res})
		verdict := "PASS"
		if len(res.Violations) > 0 {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("%-8s %-6d %-6d %-6d %-7d %-9d %-9d %-12d %v\n",
			verdict, seed, res.Done, res.Kills, len(res.PoisonKills),
			res.Backoffs, res.Retried, res.MaxLaunches, res.Elapsed.Round(time.Millisecond))
		fmt.Printf("    breaker: %v\n", res.Transitions)
		for _, v := range res.Violations {
			fmt.Printf("    VIOLATION: %s\n", v)
		}
	}
	if jsonPath != "" {
		b, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d seeds violated self-healing invariants", failed, len(seeds))
	}
	fmt.Printf("\nall %d seeds upheld self-healing: poison quarantined after its kill bar,\nbulk goodput recovered through breaker failover, no task lost or double-delivered\n", len(seeds))
	return nil
}
