// Command parsl-bench regenerates every table and figure in the paper's
// evaluation (§5):
//
//	parsl-bench latency      Fig. 3  — task-latency distributions per executor
//	parsl-bench strong       Fig. 4  — strong scaling (50k tasks, 0/10/100/1000 ms)
//	parsl-bench weak         Fig. 4  — weak scaling (10 tasks/worker)
//	parsl-bench maxworkers   Table 2 — maximum workers / nodes per framework
//	parsl-bench throughput   Table 2 — tasks/second per framework
//	parsl-bench elasticity   Fig. 5/6 — utilization with and without elasticity
//	parsl-bench submission   priority dispatch + cancellation through App.Submit
//	parsl-bench noisy        multi-tenant fairness + bounded admission under a burst
//	parsl-bench chaos        fault-injection scenarios: recovery invariants under a seeded schedule
//	parsl-bench graph        million-task DAG drain: makespan, peak RSS, record recycling
//	parsl-bench wal          durable-log crash matrix: exactly-once recovery, recovery time
//	parsl-bench health       self-healing: kill-storm recovery, breaker failover, poison quarantine
//	parsl-bench shard        sharded control plane: kill-one-shard failover, throughput scaling
//	parsl-bench locality     data-aware scheduling: shared result cache, warm-replay zeros, digest routing
//	parsl-bench all          everything above
//
// Latency, throughput-at-laptop-scale, and elasticity run on the real
// executors (goroutine workers over the in-memory network); the Blue
// Waters-scale sweeps run on the calibrated discrete-event models in
// internal/scalesim, as documented in DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: parsl-bench [flags] <latency|strong|weak|maxworkers|throughput|elasticity|submission|noisy|chaos|graph|wal|health|shard|locality|all>\n")
		flag.PrintDefaults()
	}
	tasks := flag.Int("tasks", 1000, "tasks for the latency experiment")
	burst := flag.Int("burst", 10000, "noisy: burst-tenant task count")
	full := flag.Bool("full", false, "run full-scale sweeps (up to 262144 simulated workers)")
	timeScaleMs := flag.Int("timescale", 8, "elasticity: wall milliseconds per paper second")
	chaosSeed := flag.Int64("seed", 0, "chaos: run a single seed (0 = the default 1..5 matrix)")
	chaosTasks := flag.Int("chaos-tasks", 240, "chaos: tasks per seed")
	chaosVerbose := flag.Bool("chaos-verbose", false, "chaos: print the fired fault schedule even on PASS")
	graphNodes := flag.Int("graph-nodes", 1_000_000, "graph: total DAG node count")
	graphJSON := flag.String("graph-json", "", "graph: write the result JSON to this path")
	graphRSSBudget := flag.Float64("graph-rss-budget", 0, "graph: fail if peak RSS exceeds base + this many bytes per task (0 = report only)")
	graphRSSBase := flag.Int("graph-rss-base-mb", 256, "graph: fixed RSS allowance (MiB) excluded from the per-task budget")
	walTasks := flag.Int("wal-tasks", 8, "wal: tasks per crash boundary")
	healthTasks := flag.Int("health-tasks", 160, "health: bulk tasks per seed")
	healthJSON := flag.String("health-json", "", "health: write the result JSON to this path")
	shardTasks := flag.Int("shard-tasks", 160, "shard: failover tasks per seed")
	shardJSON := flag.String("shard-json", "", "shard: write the result JSON to this path")
	shardBar := flag.Float64("shard-bar", 0, "shard: fail if 4-shard throughput scaling falls below this ratio (0 = report only; needs ≥4 cores)")
	localityTasks := flag.Int("locality-tasks", 16, "locality: distinct inputs per phase")
	localityJSON := flag.String("locality-json", "", "locality: write the result JSON to this path")
	flag.Parse()

	cmd := "all"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}
	run := func(name string, fn func() error) {
		fmt.Printf("\n================ %s ================\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "parsl-bench %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	chaosSeeds := func() []int64 {
		if *chaosSeed != 0 {
			return []int64{*chaosSeed}
		}
		return []int64{1, 2, 3, 4, 5}
	}
	switch cmd {
	case "latency":
		run("Fig. 3: latency", func() error { return runLatency(*tasks) })
	case "strong":
		run("Fig. 4 (top): strong scaling", func() error { return runStrong(*full) })
	case "weak":
		run("Fig. 4 (bottom): weak scaling", func() error { return runWeak(*full) })
	case "maxworkers":
		run("Table 2: maximum workers", runMaxWorkers)
	case "throughput":
		run("Table 2: throughput", runThroughput)
	case "elasticity":
		run("Fig. 5/6: elasticity", func() error { return runElasticity(*timeScaleMs) })
	case "submission":
		run("submission API: priority + cancellation", func() error { return runSubmission(*tasks) })
	case "noisy":
		run("multi-tenant noisy neighbor", func() error { return runNoisy(*burst) })
	case "chaos":
		run("chaos: recovery under fault injection", func() error {
			return runChaos(chaosSeeds(), *chaosTasks, *chaosVerbose)
		})
	case "graph":
		run("million-task DAG drain", func() error {
			return runGraph(*graphNodes, *graphJSON, *graphRSSBudget, *graphRSSBase)
		})
	case "wal":
		run("durable-log crash matrix", func() error {
			return runWAL(*chaosSeed, *walTasks)
		})
	case "health":
		run("self-healing: kill-storm + poison quarantine", func() error {
			return runHealth(chaosSeeds(), *healthTasks, *healthJSON)
		})
	case "shard":
		run("sharded control plane: failover + scaling", func() error {
			return runShard(chaosSeeds(), *shardTasks, *shardJSON, *shardBar)
		})
	case "locality":
		run("data-aware scheduling: shared cache + digest routing", func() error {
			return runLocality(7, *localityTasks, *localityJSON)
		})
	case "all":
		run("Fig. 3: latency", func() error { return runLatency(*tasks) })
		run("Fig. 4 (top): strong scaling", func() error { return runStrong(*full) })
		run("Fig. 4 (bottom): weak scaling", func() error { return runWeak(*full) })
		run("Table 2: maximum workers", runMaxWorkers)
		run("Table 2: throughput", runThroughput)
		run("Fig. 5/6: elasticity", func() error { return runElasticity(*timeScaleMs) })
		run("submission API: priority + cancellation", func() error { return runSubmission(*tasks) })
		run("multi-tenant noisy neighbor", func() error { return runNoisy(*burst) })
		run("chaos: recovery under fault injection", func() error {
			return runChaos(chaosSeeds(), *chaosTasks, *chaosVerbose)
		})
		run("million-task DAG drain", func() error {
			return runGraph(*graphNodes, *graphJSON, *graphRSSBudget, *graphRSSBase)
		})
		run("durable-log crash matrix", func() error {
			return runWAL(*chaosSeed, *walTasks)
		})
		run("self-healing: kill-storm + poison quarantine", func() error {
			return runHealth(chaosSeeds(), *healthTasks, *healthJSON)
		})
		run("sharded control plane: failover + scaling", func() error {
			return runShard(chaosSeeds(), *shardTasks, *shardJSON, *shardBar)
		})
		run("data-aware scheduling: shared cache + digest routing", func() error {
			return runLocality(7, *localityTasks, *localityJSON)
		})
	default:
		flag.Usage()
		os.Exit(2)
	}
}
