package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/workload"
)

// runLocality drives the data-aware scheduling evaluation: a workflow runs
// once cold, then a second process replays it warm against the shared
// content-addressed result cache and staging site, and the locality policy
// routes repeat digests to their advertised holders. The headline numbers —
// warm re-executions and warm bytes moved — must both be zero; the JSON
// artifact carries the warm-vs-cold hit-rate bar for the trend gate.
func runLocality(seed int64, tasks int, jsonPath string) error {
	fmt.Printf("locality: %d inputs, cold run + warm cross-process replay + digest routing\n\n", tasks)
	res, err := workload.RunLocality(workload.LocalityConfig{Seed: seed, Tasks: tasks})
	if err != nil {
		return err
	}

	fmt.Printf("%-6s %-12s %-10s %-14s %s\n", "run", "executions", "fetches", "bytes_moved", "hit_rate")
	fmt.Printf("%-6s %-12d %-10d %-14d %s\n", "cold", res.ColdExecutions, res.ColdFetches, res.ColdBytesFetched, "-")
	fmt.Printf("%-6s %-12d %-10d %-14d %.3f\n", "warm", res.WarmExecutions, res.WarmFetches, res.WarmBytesMoved, res.WarmHitRate)
	fmt.Printf("\nrouting: %d locality hits / %d misses; %d repeats on their digest holder, %d elsewhere\n",
		res.RouteHits, res.RouteMisses, res.RoutedToHolder, res.RoutedElsewhere)
	fmt.Printf("stale advert after shard kill: cold rerun ok=%v\n", res.StaleRerunOK)
	fmt.Printf("shared cache: %d stores, %d hits, %d misses; elapsed %v\n",
		res.CacheStats.Stores, res.CacheStats.Hits, res.CacheStats.Misses, res.Elapsed.Round(time.Millisecond))
	for _, v := range res.Violations {
		fmt.Printf("    VIOLATION: %s\n", v)
	}

	if jsonPath != "" {
		out := struct {
			Tasks            int     `json:"tasks"`
			ColdExecutions   int     `json:"cold_executions"`
			WarmExecutions   int     `json:"warm_executions"`
			ColdBytesFetched int64   `json:"cold_bytes_fetched"`
			WarmBytesMoved   int64   `json:"warm_bytes_moved"`
			WarmHitRate      float64 `json:"warm_hit_rate"`
			RouteHits        int64   `json:"route_hits"`
			RouteMisses      int64   `json:"route_misses"`
			RoutedToHolder   int     `json:"routed_to_holder"`
			RoutedElsewhere  int     `json:"routed_elsewhere"`
			StaleRerunOK     bool    `json:"stale_rerun_ok"`
			Violations       int     `json:"violations"`
			ElapsedMs        float64 `json:"elapsed_ms"`
		}{
			res.Tasks, res.ColdExecutions, res.WarmExecutions,
			res.ColdBytesFetched, res.WarmBytesMoved, res.WarmHitRate,
			res.RouteHits, res.RouteMisses, res.RoutedToHolder, res.RoutedElsewhere,
			res.StaleRerunOK, len(res.Violations),
			float64(res.Elapsed.Microseconds()) / 1e3,
		}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}

	if len(res.Violations) > 0 {
		return fmt.Errorf("%d locality invariant violations", len(res.Violations))
	}
	fmt.Printf("\nwarm replay moved 0 bytes and re-executed 0 tasks; every repeat ran on its digest holder\n")
	return nil
}
