package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/workload"
)

// runGraph builds and drains the windowed-chain DAG (default one million
// nodes), reporting makespan, throughput, peak RSS, and the recycling
// evidence. With rssBudget > 0 the run fails when peak RSS exceeds
// rssBaseMB + nodes×rssBudget bytes — the CI memory bar proving that
// steady-state memory tracks the live frontier, not the total task count.
// With jsonPath set the full GraphResult is written there for artifacts.
func runGraph(nodes int, jsonPath string, rssBudget float64, rssBaseMB int) error {
	base := int64(rssBaseMB) << 20
	res, err := workload.RunGraph(workload.GraphConfig{
		Nodes:        nodes,
		RSSBaseBytes: base,
	})
	if err != nil {
		return err
	}
	fmt.Printf("drained %d-node DAG (%d chains × window %d, %d edges) in %.0f ms — %.0f tasks/s\n",
		res.Nodes, res.Chains, res.Window, res.Edges, res.MakespanMs, res.TasksPerSec)
	fmt.Printf("peak RSS %.1f MiB (%.1f B/task over a %d MiB base)  live frontier max %d  recycled %d  allocs/task %.1f\n",
		float64(res.PeakRSSBytes)/(1<<20), res.RSSPerTask, rssBaseMB,
		res.LiveNodesMax, res.RecycledNodes, res.AllocsPerTask)
	if int64(res.RecycledNodes) != int64(res.Nodes) {
		return fmt.Errorf("recycled %d of %d records — graph reclamation leaked", res.RecycledNodes, res.Nodes)
	}
	if jsonPath != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if rssBudget > 0 {
		limit := base + int64(rssBudget*float64(nodes))
		if res.PeakRSSBytes > limit {
			return fmt.Errorf("peak RSS %d B exceeds budget %d B (%d MiB base + %.1f B/task × %d tasks)",
				res.PeakRSSBytes, limit, rssBaseMB, rssBudget, nodes)
		}
		fmt.Printf("RSS budget ok: %d B ≤ %d B\n", res.PeakRSSBytes, limit)
	}
	return nil
}
