package main

import (
	"fmt"
	"time"

	"repro/internal/scalesim"
)

// taskDurations are the paper's four task classes (Fig. 4 columns).
var taskDurations = []time.Duration{0, 10 * time.Millisecond, 100 * time.Millisecond, time.Second}

func workerSweep(full bool) []int {
	sweep := []int{32, 128, 512, 2048, 8192}
	if full {
		sweep = append(sweep, 32768, 65536, 262144)
	}
	return sweep
}

// runStrong reproduces the top row of Fig. 4: completion time for 50 000
// tasks (5000 for FireWorks, matching the paper's reduced allocation) as
// worker count grows.
func runStrong(full bool) error {
	sweep := workerSweep(full)
	for _, dur := range taskDurations {
		fmt.Printf("\n--- strong scaling, task duration %v (completion time, s) ---\n", dur)
		fmt.Printf("%-12s", "workers")
		for _, w := range sweep {
			fmt.Printf(" %9d", w)
		}
		fmt.Println()
		for _, p := range scalesim.All() {
			tasks := 50000
			if p.Name == "fireworks" {
				tasks = 5000 // "we only launched 5000 tasks due to the limited allocation"
			}
			res := scalesim.StrongScaling(p, tasks, dur, sweep)
			fmt.Printf("%-12s", p.Name)
			for i := range sweep {
				if i < len(res) {
					fmt.Printf(" %9.1f", res[i].Makespan.Seconds())
				} else {
					fmt.Printf(" %9s", "-") // beyond the framework's worker cap
				}
			}
			fmt.Println()
		}
	}
	fmt.Println("\npaper shape: HTEX best and ~flat; EXEX close; IPP/Dask degrade past 512-1024 workers;")
	fmt.Println("FireWorks ~an order of magnitude slower even with 10x fewer tasks. '-' = cannot connect that many workers.")
	return nil
}

// runWeak reproduces the bottom row of Fig. 4: 10 tasks per worker.
func runWeak(full bool) error {
	sweep := workerSweep(full)
	for _, dur := range taskDurations {
		fmt.Printf("\n--- weak scaling, 10 tasks/worker, task duration %v (completion time, s) ---\n", dur)
		fmt.Printf("%-12s", "workers")
		for _, w := range sweep {
			fmt.Printf(" %9d", w)
		}
		fmt.Println()
		for _, p := range scalesim.All() {
			res := scalesim.WeakScaling(p, 10, dur, sweep)
			fmt.Printf("%-12s", p.Name)
			for i := range sweep {
				if i < len(res) {
					fmt.Printf(" %9.1f", res[i].Makespan.Seconds())
				} else {
					fmt.Printf(" %9s", "-")
				}
			}
			fmt.Println()
		}
	}
	fmt.Println("\npaper shape: flat then knee — FireWorks ~32 workers, IPP ~256, Dask/HTEX/EXEX ~1024-2048.")
	return nil
}

// runMaxWorkers reproduces the Table 2 max-workers/max-nodes columns.
func runMaxWorkers() error {
	fmt.Printf("%-12s %12s %10s %14s\n", "framework", "max workers", "max nodes", "limited by")
	for _, p := range scalesim.All() {
		alloc := 2048 // the paper's HTEX allocation limit
		if p.Name == "parsl-exex" {
			alloc = 8192 // the paper's EXEX allocation limit
		}
		r := scalesim.ProbeMaxWorkers(p, alloc)
		fmt.Printf("%-12s %12d %10d %14s\n", r.Framework, r.MaxWorkers, r.MaxNodes, r.LimitedBy)
	}
	fmt.Println("\npaper (Table 2): ipp 2048/64; htex 65536/2048*; exex 262144/8192*; fireworks 1024/32; dask 8192/256")
	fmt.Println("(* allocation-limited, not a scalability limit)")
	return nil
}

// runThroughput reproduces the Table 2 tasks/second column: 50 000 no-op
// tasks on a Midway-scale pool.
func runThroughput() error {
	fmt.Printf("%-12s %14s\n", "framework", "tasks/second")
	for _, p := range scalesim.All() {
		r := scalesim.Throughput(p, 256)
		fmt.Printf("%-12s %14s\n", r.Framework, scalesim.FormatRate(r.Rate))
	}
	fmt.Println("\npaper (Table 2): ipp 330, htex 1181, exex 1176, fireworks 4, dask 2617")
	return nil
}
