package main

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/baselines"
	"repro/internal/executor"
	"repro/internal/executor/exex"
	"repro/internal/executor/htex"
	"repro/internal/executor/llex"
	"repro/internal/executor/threadpool"
	"repro/internal/provider"
	"repro/internal/serialize"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// runLatency reproduces Fig. 3: the distribution of single-task latencies
// for 1000 sequential no-op tasks per executor, on a Midway-like network
// (0.07 ms RTT). The paper's ordering — ThreadPool < LLEX < HTEX < EXEX <
// IPP < Dask — must reproduce; absolute values are lower than the paper's
// because goroutine workers replace Python processes (see EXPERIMENTS.md).
func runLatency(tasks int) error {
	type build struct {
		name string
		mk   func(reg *serialize.Registry) (executor.Executor, error)
	}
	builds := []build{
		{"threadpool", func(reg *serialize.Registry) (executor.Executor, error) {
			return threadpool.New("tp", 1, reg), nil
		}},
		{"llex", func(reg *serialize.Registry) (executor.Executor, error) {
			return llex.New(llex.Config{
				Label: "llex", Transport: simnet.Midway(), Registry: reg, Workers: 1,
			}), nil
		}},
		{"htex", func(reg *serialize.Registry) (executor.Executor, error) {
			return htex.New(htex.Config{
				Label: "htex", Transport: simnet.Midway(), Registry: reg,
				Provider:   provider.NewLocal(provider.Config{NodesPerBlock: 1}),
				InitBlocks: 1,
				Manager:    htex.ManagerConfig{Workers: 1},
			}), nil
		}},
		{"exex", func(reg *serialize.Registry) (executor.Executor, error) {
			return exex.New(exex.Config{
				Label: "exex", Transport: simnet.Midway(), Registry: reg,
				Provider:   provider.NewLocal(provider.Config{NodesPerBlock: 1}),
				InitBlocks: 1,
				Pool:       exex.PoolConfig{Ranks: 2, MPILatency: 20 * time.Microsecond},
			}), nil
		}},
		{"ipp", func(reg *serialize.Registry) (executor.Executor, error) {
			return baselines.NewIPP(1, reg), nil
		}},
		{"dask", func(reg *serialize.Registry) (executor.Executor, error) {
			return baselines.NewDask(1, reg), nil
		}},
	}

	fmt.Printf("%-12s %10s %10s %10s %10s %10s\n", "executor", "mean", "p50", "p95", "min", "max")
	for _, b := range builds {
		reg := serialize.NewRegistry()
		if err := workload.RegisterBenchApps(reg); err != nil {
			return err
		}
		ex, err := b.mk(reg)
		if err != nil {
			return err
		}
		if err := ex.Start(); err != nil {
			return err
		}
		stats, err := measureLatency(ex, tasks)
		_ = ex.Shutdown()
		if err != nil {
			return fmt.Errorf("%s: %w", b.name, err)
		}
		fmt.Printf("%-12s %10s %10s %10s %10s %10s\n", b.name,
			fmtDur(stats.mean), fmtDur(stats.p50), fmtDur(stats.p95),
			fmtDur(stats.min), fmtDur(stats.max))
	}
	fmt.Println("\npaper (Fig. 3, avg ms): threadpool ~1.0, llex 3.47, htex 6.87, exex 9.83, ipp 11.72, dask 16.19")
	fmt.Println("shape check: ordering threadpool < llex < htex < exex < ipp < dask")
	return nil
}

type latStats struct {
	mean, p50, p95, min, max time.Duration
}

// measureLatency launches `tasks` sequential no-ops, recording submission →
// completion time for each (the paper's methodology: deploy the worker
// first, then launch 1000 tasks sequentially).
func measureLatency(ex executor.Executor, tasks int) (latStats, error) {
	// Warm-up: wait until the executor actually completes a task, so
	// manager registration time is excluded.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := ex.Submit(serialize.TaskMsg{ID: -1, App: "noop"}).ResultTimeout(time.Second); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return latStats{}, fmt.Errorf("executor never became ready")
		}
	}
	lats := make([]time.Duration, 0, tasks)
	for i := 0; i < tasks; i++ {
		start := time.Now()
		if _, err := ex.Submit(serialize.TaskMsg{ID: int64(i), App: "noop"}).Result(); err != nil {
			return latStats{}, err
		}
		lats = append(lats, time.Since(start))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	return latStats{
		mean: sum / time.Duration(len(lats)),
		p50:  lats[len(lats)/2],
		p95:  lats[len(lats)*95/100],
		min:  lats[0],
		max:  lats[len(lats)-1],
	}, nil
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
}
