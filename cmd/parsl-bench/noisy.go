package main

import (
	"fmt"
	"time"

	"repro/internal/workload"
)

// runNoisy runs the multi-tenant noisy-neighbor scenario in three arms, all
// with tenants weighted 10:1 and a burst tenant flooding the pool:
//
//  1. fair queuing alone (DRR weights): completion-throughput shares must
//     land within 2x of the 10:1 weight ratio, and the light tenant's
//     latency dilation is bounded by the weights (~11x), independent of the
//     burst size;
//  2. bounded admission (quota on the burst tenant): the light tenant's p95
//     submit-to-start latency must stay under 10x its uncontended value;
//  3. the pre-tenancy FIFO baseline, where the light tenant queues behind
//     the whole burst — the failure mode arms 1 and 2 exist to prevent.
func runNoisy(burst int) error {
	if burst <= 0 {
		burst = 10000
	}
	base := workload.NoisyConfig{
		Workers: 8, QueueDepth: 8, TaskDuration: 5 * time.Millisecond,
		HeavyTasks: burst, LightTasks: 300,
		HeavyWeight: 10, LightWeight: 1,
		Tenanted: true,
	}
	report := func(name string, res workload.NoisyResult) {
		fmt.Printf("%-18s light p95 %10v (uncontended %v, %5.1fx)  shares heavy:light %6.1f:1  [%d heavy done in window, %v elapsed]\n",
			name, res.ContendedP95, res.UncontendedP95, res.LatencyRatio,
			res.ShareRatio, res.HeavyCompleted, res.Elapsed.Round(time.Millisecond))
	}
	bar := func(ok bool, msg string) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		fmt.Printf("  %s: %s\n", status, msg)
	}

	fmt.Printf("noisy neighbor: %d-task burst tenant vs %d-task light tenant, weights 10:1, %d workers\n\n",
		base.HeavyTasks, base.LightTasks, base.Workers)

	fair := base
	res, err := workload.RunNoisy(fair)
	if err != nil {
		return err
	}
	report("fair-shares", res)
	bar(res.ShareRatio >= 5 && res.ShareRatio <= 20,
		fmt.Sprintf("observed shares %.1f:1 within 2x of the 10:1 weight ratio", res.ShareRatio))

	quota := base
	quota.HeavyQuota = 4
	quota.QueueDepth = 2
	res, err = workload.RunNoisy(quota)
	if err != nil {
		return err
	}
	report("bounded-admission", res)
	bar(res.LatencyRatio < 10,
		fmt.Sprintf("light p95 %.1fx its uncontended value under the burst (bar: <10x)", res.LatencyRatio))

	fifo := base
	fifo.Tenanted = false
	res, err = workload.RunNoisy(fifo)
	if err != nil {
		return err
	}
	report("fifo-baseline", res)
	fmt.Printf("  (contrast: without tenancy the light tenant dilates %.1fx — and it grows with the burst)\n",
		res.LatencyRatio)
	return nil
}
