package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/workload"
)

// runChaos drives the reference multi-executor workload under the seeded
// default fault plan for each seed, printing the fired fault schedule and
// the invariant verdict. The same seed always replays the same schedule, so
// a failing seed printed here is a complete reproduction recipe:
//
//	parsl-bench chaos -seed <n>
//	CHAOS_SEEDS=<n> go test ./internal/workload/ -run TestChaosRecoverySeeds -race
func runChaos(seeds []int64, tasks int, verbose bool) error {
	ckptDir, err := os.MkdirTemp("", "parsl-chaos")
	if err != nil {
		return err
	}
	defer os.RemoveAll(ckptDir)

	failed := 0
	for _, seed := range seeds {
		res, err := workload.RunChaos(workload.ChaosConfig{
			Seed:       seed,
			Tasks:      tasks,
			Checkpoint: filepath.Join(ckptDir, fmt.Sprintf("seed%d.ckpt", seed)),
		})
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		verdict := "PASS"
		if len(res.Violations) > 0 {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("%s seed %-8d submitted %4d  done %4d  memoized %3d  failed %2d  executions %4d  retried %3d  faults %3d  %v\n",
			verdict, seed, res.Submitted, res.Done, res.Memoized, res.Failed,
			res.Executions, res.Retried, len(res.Events), res.Elapsed.Round(1e6))
		if verbose || len(res.Violations) > 0 {
			for _, e := range res.Events {
				fmt.Printf("    fault: %s\n", e)
			}
		}
		for _, v := range res.Violations {
			fmt.Printf("    VIOLATION: %s\n", v)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d seeds violated recovery invariants", failed, len(seeds))
	}
	fmt.Printf("\nall %d seeds upheld every recovery invariant (no task lost, exactly-once results,\nretries within budget, broker drained, checkpoint consistent)\n", len(seeds))
	return nil
}
