package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/workload"
)

// runWAL drives the two-lifetime crash-recovery scenario at a spread of WAL
// record boundaries: a full matrix (every boundary) when tasks is small
// enough, otherwise a deterministic sample derived from the seed. Each row is
// one simulated process death — records 0..k-1 durable, everything after
// lost — followed by a recovery whose exactly-once invariants are checked.
// A failing boundary printed here is a complete reproduction recipe:
//
//	parsl-bench wal -seed <s> -wal-tasks <n>
//	go test ./internal/workload/ -run TestWALCrashMatrix -race
func runWAL(seed int64, tasks int) error {
	if seed == 0 {
		seed = 1
	}
	dir, err := os.MkdirTemp("", "parsl-wal")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Baseline (no crash) pins the full record count: submit+launch+terminal
	// per task.
	base, err := workload.RunWALCrash(workload.WALCrashConfig{
		Tasks: tasks, Boundary: -1, Seed: seed, Dir: filepath.Join(dir, "base"),
	})
	if err != nil {
		return err
	}
	boundaries := sampleBoundaries(seed, base.Records)

	fmt.Printf("%d tasks, %d records at a clean run; crashing at %d boundaries (seed %d)\n\n",
		tasks, base.Records, len(boundaries), seed)
	fmt.Printf("%-8s %-9s %-10s %-11s %-10s %-10s %s\n",
		"verdict", "boundary", "live", "terminal", "reexec", "memohits", "recovery")
	failed := 0
	var worst time.Duration
	for i, k := range boundaries {
		res, err := workload.RunWALCrash(workload.WALCrashConfig{
			Tasks: tasks, Boundary: k, Seed: seed,
			Dir: filepath.Join(dir, fmt.Sprintf("b%d", i)),
		})
		if err != nil {
			return fmt.Errorf("boundary %d: %w", k, err)
		}
		verdict := "PASS"
		if len(res.Violations) > 0 || res.ReExecuted > res.LiveAtCrash {
			verdict = "FAIL"
			failed++
		}
		if res.RecoveryTime > worst {
			worst = res.RecoveryTime
		}
		fmt.Printf("%-8s %-9d %-10d %-11d %-10d %-10d %v\n",
			verdict, k, res.LiveAtCrash, res.TerminalAtCrash, res.ReExecuted,
			res.MemoHits, res.RecoveryTime.Round(time.Microsecond))
		for _, v := range res.Violations {
			fmt.Printf("    VIOLATION: %s\n", v)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d boundaries violated exactly-once recovery", failed, len(boundaries))
	}
	fmt.Printf("\nall %d boundaries upheld exactly-once recovery (no task lost or double-delivered,\nno pre-crash-terminal task re-executed, launch budget spans lifetimes); worst recovery %v\n",
		len(boundaries), worst.Round(time.Microsecond))
	return nil
}

// sampleBoundaries picks the crash points: every record boundary when the run
// is small, otherwise the edges plus a deterministic seed-derived spread (the
// same seed always re-runs the same boundaries).
func sampleBoundaries(seed, records int64) []int64 {
	const maxPoints = 24
	if records+1 <= maxPoints {
		out := make([]int64, 0, records+1)
		for k := int64(0); k <= records; k++ {
			out = append(out, k)
		}
		return out
	}
	seen := map[int64]bool{0: true, records: true}
	out := []int64{0, records}
	x := uint64(seed)
	for len(out) < maxPoints {
		// splitmix64 step: deterministic, seed-reproducible.
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		k := int64((z ^ (z >> 31)) % uint64(records+1))
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
