package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/workload"
)

// runShard drives the sharded-control-plane evaluation:
//
//  1. Failover matrix — per seed, one interchange shard of a 4-shard pool
//     is killed through the chaos plane mid-workload; every seed must
//     uphold the blast-radius contract (only the victim's outstanding set
//     re-executes, survivors untouched, every task exactly-once).
//  2. Scaling arms — the same total manager capacity behind 1 shard vs N
//     shards, reporting client-observed throughput and their ratio.
//
// bar > 0 requires scale ≥ bar (the CI shard job passes 1.8 for N=4). The
// bar needs real cores — the routers must actually run in parallel — so it
// is skipped (loudly) below 4 CPUs rather than failing on serialized
// hardware where both arms share one core.
func runShard(seeds []int64, tasks int, jsonPath string, bar float64) error {
	const shards = 4
	fmt.Printf("failover: %d tasks over %d shards per seed; seeds %v\n\n", tasks, shards, seeds)
	fmt.Printf("%-8s %-6s %-6s %-11s %-9s %-8s %-10s %s\n",
		"verdict", "seed", "done", "victimheld", "retried", "shards", "health", "elapsed")
	type failRow struct {
		Seed int64 `json:"seed"`
		workload.ShardFailoverResult
	}
	failRows := make([]failRow, 0, len(seeds))
	failed := 0
	for _, seed := range seeds {
		res, err := workload.RunShardFailover(workload.ShardFailoverConfig{
			Seed: seed, Shards: shards, Tasks: tasks,
		})
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		res.Events = nil // reproducible from the seed; keep the artifact small
		failRows = append(failRows, failRow{Seed: seed, ShardFailoverResult: res})
		verdict := "PASS"
		if len(res.Violations) > 0 {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("%-8s %-6d %-6d %-11d %-9d %d/%-6d %-10s %v\n",
			verdict, seed, res.Done, res.VictimHeld, res.Retried,
			res.ShardsAlive, res.ShardsTotal, res.Health, res.Elapsed.Round(time.Millisecond))
		for _, v := range res.Violations {
			fmt.Printf("    VIOLATION: %s\n", v)
		}
	}

	fmt.Printf("\nscaling: equal manager capacity behind 1 vs %d shards\n\n", shards)
	type scaleRow struct {
		Shards      int     `json:"shards"`
		Tasks       int     `json:"tasks"`
		ElapsedMs   float64 `json:"elapsed_ms"`
		TasksPerSec float64 `json:"tasks_per_sec"`
	}
	scaleRows := make([]scaleRow, 0, 2)
	var single, sharded float64
	for _, s := range []int{1, shards} {
		res, err := workload.RunShardScaling(workload.ShardScalingConfig{Seed: 1, Shards: s})
		if err != nil {
			return err
		}
		scaleRows = append(scaleRows, scaleRow{
			Shards: res.Shards, Tasks: res.Tasks,
			ElapsedMs:   float64(res.Elapsed.Microseconds()) / 1e3,
			TasksPerSec: res.TasksPerSec,
		})
		fmt.Printf("  %d shard(s): %8.0f tasks/s  (%d tasks in %v)\n",
			res.Shards, res.TasksPerSec, res.Tasks, res.Elapsed.Round(time.Millisecond))
		if s == 1 {
			single = res.TasksPerSec
		} else {
			sharded = res.TasksPerSec
		}
	}
	scale := sharded / single
	cores := runtime.NumCPU()
	fmt.Printf("\n  throughput scaling %d→%d shards: %.2fx on %d cores\n", 1, shards, scale, cores)
	barApplied := bar > 0 && cores >= 4
	if bar > 0 && !barApplied {
		fmt.Printf("  bar %.2fx SKIPPED: %d cores cannot run the shard routers in parallel\n", bar, cores)
	}

	if jsonPath != "" {
		out := struct {
			Failover   []failRow  `json:"failover"`
			Scaling    []scaleRow `json:"scaling"`
			Scale      float64    `json:"scale"`
			Bar        float64    `json:"bar,omitempty"`
			BarApplied bool       `json:"bar_applied"`
			Cores      int        `json:"cores"`
		}{failRows, scaleRows, scale, bar, barApplied, cores}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}

	if failed > 0 {
		return fmt.Errorf("%d of %d seeds violated shard-failover invariants", failed, len(seeds))
	}
	if barApplied && scale < bar {
		return fmt.Errorf("throughput scaling %.2fx below the %.2fx bar (%d shards, %d cores)",
			scale, bar, shards, cores)
	}
	fmt.Printf("\nall %d seeds upheld shard failover: one shard killed, only its outstanding\nset re-executed, survivors untouched, every task exactly-once\n", len(seeds))
	return nil
}
