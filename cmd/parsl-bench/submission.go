package main

import (
	"context"
	"fmt"
	"time"

	parsl "repro"
)

// runSubmission demonstrates the context-aware submission API on a live DFK:
// a backlogged thread pool is fed a burst of background tasks, then a
// high-priority probe (WithPriority) and a canceled batch (context
// cancellation), and the observed completion order and cancellation
// effectiveness are reported. This is the qualitative companion to the
// quantitative go-test benchmarks: it shows priority dispatch and
// cancellation propagation end to end, not just their overheads.
func runSubmission(tasks int) error {
	if tasks <= 0 {
		tasks = 200
	}
	d, err := parsl.NewLocal(2)
	if err != nil {
		return err
	}
	defer d.Shutdown()

	sleep, err := d.PythonApp("bench-sleep", func(args []any, _ map[string]any) (any, error) {
		time.Sleep(time.Duration(args[0].(int)) * time.Microsecond)
		return args[0], nil
	})
	if err != nil {
		return err
	}

	ctx := context.Background()

	// Backlog the pool, then submit one high-priority probe and measure how
	// long it waits versus a plain probe submitted at the same moment.
	futs := make([]*parsl.Future, tasks)
	for i := 0; i < tasks; i++ {
		futs[i] = sleep.Submit(ctx, []any{500})
	}
	probeStart := time.Now()
	urgent := sleep.Submit(ctx, []any{1}, parsl.WithPriority(100))
	plain := sleep.Submit(ctx, []any{1})
	if _, err := urgent.ResultCtx(ctx); err != nil {
		return err
	}
	urgentLat := time.Since(probeStart)
	if _, err := plain.ResultCtx(ctx); err != nil {
		return err
	}
	plainLat := time.Since(probeStart)
	if err := parsl.WaitAll(futs...); err != nil {
		return err
	}
	fmt.Printf("backlog of %d tasks: urgent probe %v, plain probe %v\n", tasks, urgentLat, plainLat)

	// Cancellation: submit a second backlog under a cancelable context and
	// cancel it immediately; count how many tasks actually ran.
	cctx, cancel := context.WithCancel(ctx)
	canceled := make([]*parsl.Future, tasks)
	for i := 0; i < tasks; i++ {
		canceled[i] = sleep.Submit(cctx, []any{500})
	}
	cancel()
	ran, dropped := 0, 0
	for _, f := range canceled {
		if _, err := f.Result(); err != nil {
			dropped++
		} else {
			ran++
		}
	}
	d.WaitAll()
	fmt.Printf("canceled mid-burst: %d of %d tasks dropped before running, %d already done\n",
		dropped, tasks, ran)

	// Typed facade round trip, for the record.
	echo := parsl.Typed1[int, int](sleep)
	if v, err := echo(ctx, 1).Result(ctx); err != nil || v != 1 {
		return fmt.Errorf("typed round trip: %v, %v", v, err)
	}
	fmt.Println("typed submission round trip: ok")
	return nil
}
