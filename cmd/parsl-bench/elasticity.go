package main

import (
	"fmt"
	"time"

	"repro/internal/workload"
)

// runElasticity reproduces the Fig. 5 workflow / Fig. 6 measurement: the
// four-stage 20-wide map-reduce workflow executed with a fixed allocation
// and with block-based elasticity, reporting worker utilization and
// makespan. Time is compressed (timeScaleMs wall-milliseconds per paper
// second); results are reported in paper seconds.
func runElasticity(timeScaleMs int) error {
	scale := time.Duration(timeScaleMs) * time.Millisecond
	fmt.Printf("workflow (Fig. 5): 20x100s -> 1x50s -> 20x100s -> 1x50s; blocks of 5 workers, max 4 blocks\n")
	fmt.Printf("time scale: 1 paper second = %v wall time\n\n", scale)

	fixed, err := workload.RunElasticity(workload.ElasticityConfig{TimeScale: scale, Elastic: false})
	if err != nil {
		return err
	}
	elastic, err := workload.RunElasticity(workload.ElasticityConfig{TimeScale: scale, Elastic: true})
	if err != nil {
		return err
	}

	fmt.Printf("%-10s %14s %14s %12s %12s\n", "mode", "makespan (s)", "utilization", "peak wkrs", "min wkrs")
	fmt.Printf("%-10s %14.0f %13.2f%% %12d %12d\n", "fixed",
		fixed.MakespanSeconds, fixed.Utilization*100, fixed.PeakWorkers, fixed.MinWorkers)
	fmt.Printf("%-10s %14.0f %13.2f%% %12d %12d\n", "elastic",
		elastic.MakespanSeconds, elastic.Utilization*100, elastic.PeakWorkers, elastic.MinWorkers)

	dUtil := (elastic.Utilization - fixed.Utilization) / fixed.Utilization * 100
	dMk := (elastic.MakespanSeconds - fixed.MakespanSeconds) / fixed.MakespanSeconds * 100
	fmt.Printf("\nutilization improvement: %+.1f%%, makespan change: %+.1f%%\n", dUtil, dMk)
	fmt.Println("paper (Fig. 6): fixed 68.15% util / 301 s; elastic 84.28% util / 331 s (+23.6% util, +9.9% makespan)")
	return nil
}
