// Command parsl-monitor inspects a monitoring JSONL file produced by
// configuring the DFK with a monitor.FileSink (§4.6) — the file-backed
// variant of Parsl's monitoring database plus its visualization summary.
//
//	parsl-monitor -file run.jsonl            # summary
//	parsl-monitor -file run.jsonl -task 17   # one task's state history
//	parsl-monitor -file run.jsonl -timeline  # per-second concurrency trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/monitor"
)

func main() {
	file := flag.String("file", "", "monitoring JSONL file")
	taskID := flag.Int64("task", -1, "show the state history of one task")
	timeline := flag.Bool("timeline", false, "print a per-second running-task histogram")
	flag.Parse()
	if *file == "" {
		fmt.Fprintln(os.Stderr, "parsl-monitor: -file is required")
		os.Exit(2)
	}

	events, err := monitor.ReadFile(*file)
	if err != nil {
		log.Fatalf("parsl-monitor: %v", err)
	}
	store := monitor.NewStore()
	for _, e := range events {
		store.Emit(e)
	}

	if *taskID >= 0 {
		printTask(store, *taskID)
		return
	}
	if *timeline {
		printTimeline(store)
		return
	}
	printSummary(store)
}

func printSummary(store *monitor.Store) {
	counts := store.StateCounts()
	var states []string
	for s := range counts {
		states = append(states, s)
	}
	sort.Strings(states)
	fmt.Printf("%d events\n\nfinal task states:\n", store.Len())
	for _, s := range states {
		fmt.Printf("  %-12s %6d\n", s, counts[s])
	}
	spans := store.ExecutionSpans()
	if len(spans) == 0 {
		return
	}
	var total time.Duration
	for _, sp := range spans {
		total += sp.End.Sub(sp.Start)
	}
	fmt.Printf("\nexecution spans: %d, total task time %v, mean %v\n",
		len(spans), total.Round(time.Millisecond), (total / time.Duration(len(spans))).Round(time.Microsecond))
}

func printTask(store *monitor.Store, id int64) {
	hist := store.TaskHistory(id)
	if len(hist) == 0 {
		fmt.Printf("no events for task %d\n", id)
		return
	}
	fmt.Printf("task %d (%s):\n", id, hist[0].App)
	for _, e := range hist {
		fmt.Printf("  %s  %-10s -> %-10s executor=%s\n",
			e.At.Format("15:04:05.000"), orDash(e.From), e.To, orDash(e.Executor))
	}
}

func printTimeline(store *monitor.Store) {
	spans := store.ExecutionSpans()
	if len(spans) == 0 {
		fmt.Println("no execution spans")
		return
	}
	t0 := spans[0].Start
	tEnd := t0
	for _, sp := range spans {
		if sp.End.After(tEnd) {
			tEnd = sp.End
		}
	}
	buckets := int(tEnd.Sub(t0)/time.Second) + 1
	running := make([]int, buckets)
	for _, sp := range spans {
		from := int(sp.Start.Sub(t0) / time.Second)
		to := int(sp.End.Sub(t0) / time.Second)
		for b := from; b <= to && b < buckets; b++ {
			running[b]++
		}
	}
	maxR := 1
	for _, r := range running {
		if r > maxR {
			maxR = r
		}
	}
	fmt.Println("running tasks per second (Fig. 6-style trace):")
	for i, r := range running {
		bar := strings.Repeat("#", r*50/maxR)
		fmt.Printf("  t+%3ds %4d %s\n", i, r, bar)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
