// Command parsl-worker runs a standalone HTEX manager in its own process,
// connecting to an interchange over real TCP. It demonstrates that the
// executor protocol is a genuine wire protocol, not an in-process shortcut:
// start an interchange-owning program (see -demo below), then point one or
// more parsl-worker processes at it.
//
//	parsl-worker -interchange 127.0.0.1:9550 -id mgr-1 -workers 8
//
// The worker registers the standard bench apps (noop, sleep, echo). Real
// deployments would compile their own worker binary linking their app
// package — the Go analogue of Parsl workers importing the user's modules.
//
// With -demo, the process instead starts an interchange + client, spawns a
// child parsl-worker, runs a few tasks through it over loopback TCP, and
// exits — a self-contained two-process smoke test.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/executor/htex"
	"repro/internal/serialize"
	"repro/internal/simnet"
	"repro/internal/workload"
)

func main() {
	interchange := flag.String("interchange", "", "interchange address (host:port)")
	id := flag.String("id", "", "manager identity (default mgr-<pid>)")
	workers := flag.Int("workers", 4, "worker goroutines on this node")
	prefetch := flag.Int("prefetch", 4, "extra task slots to prefetch")
	demo := flag.Bool("demo", false, "run a self-contained two-process demo")
	flag.Parse()

	if *demo {
		if err := runDemo(); err != nil {
			log.Fatalf("parsl-worker demo: %v", err)
		}
		return
	}
	if *interchange == "" {
		fmt.Fprintln(os.Stderr, "parsl-worker: -interchange is required (or use -demo)")
		os.Exit(2)
	}
	if *id == "" {
		*id = fmt.Sprintf("mgr-%d", os.Getpid())
	}

	reg := serialize.NewRegistry()
	if err := workload.RegisterBenchApps(reg); err != nil {
		log.Fatal(err)
	}
	if err := reg.Register("echo", func(args []any, _ map[string]any) (any, error) {
		return args[0], nil
	}); err != nil {
		log.Fatal(err)
	}

	mgr, err := htex.StartManager(simnet.TCP{}, *interchange, *id, reg, htex.ManagerConfig{
		Workers:  *workers,
		Prefetch: *prefetch,
	})
	if err != nil {
		log.Fatalf("parsl-worker: %v", err)
	}
	log.Printf("parsl-worker %s: %d workers connected to %s", *id, *workers, *interchange)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("parsl-worker %s: draining (%d tasks executed)", *id, mgr.Executed())
	mgr.Drain()
}

// runDemo starts an interchange, forks a child parsl-worker over TCP, and
// pushes tasks through it.
func runDemo() error {
	reg := serialize.NewRegistry()
	if err := workload.RegisterBenchApps(reg); err != nil {
		return err
	}
	ex := htex.New(htex.Config{
		Label:     "htex-demo",
		Transport: simnet.TCP{},
		Addr:      "127.0.0.1:0",
		Registry:  reg,
		// No provider: the external process supplies the manager.
	})
	if err := ex.Start(); err != nil {
		return err
	}
	defer ex.Shutdown()
	addr := ex.Interchange().Addr()
	fmt.Printf("interchange listening at %s\n", addr)

	self, err := os.Executable()
	if err != nil {
		return err
	}
	child := exec.Command(self, "-interchange", addr, "-id", "mgr-child", "-workers", "2")
	child.Stdout = os.Stdout
	child.Stderr = os.Stderr
	if err := child.Start(); err != nil {
		return err
	}
	defer func() {
		_ = child.Process.Signal(syscall.SIGTERM)
		_ = child.Wait()
	}()

	deadline := time.Now().Add(10 * time.Second)
	for ex.Interchange().ManagerCount() == 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("child manager never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println("child manager registered; running 100 tasks over TCP")
	start := time.Now()
	for i := 0; i < 100; i++ {
		if _, err := ex.Submit(serialize.TaskMsg{ID: int64(i), App: "noop"}).Result(); err != nil {
			return fmt.Errorf("task %d: %w", i, err)
		}
	}
	fmt.Printf("100 tasks in %v across process boundary\n", time.Since(start))
	return nil
}
