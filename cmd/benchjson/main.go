// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark result. CI uses it to publish
// the serialization benchmarks as a machine-readable artifact
// (BENCH_serialize.json) so the performance trajectory is tracked PR over
// PR.
//
//	go test -bench 'SerializeRoundTrip' -benchmem ./internal/serialize | benchjson
//
// Lines that are not benchmark results (headers, PASS/ok trailers) are
// ignored. Recognized per-line fields beyond ns/op: B/op, allocs/op, MB/s,
// and custom metrics reported via b.ReportMetric (unit taken verbatim).
//
// The optional -min-speedup base,new,factor flag (repeatable) turns the
// converter into a gate: it exits non-zero unless benchmark `base` is at
// least `factor` times slower (ns/op) than benchmark `new`. CI uses it to
// enforce the encode-once acceptance bar — streaming must stay ≥2× faster
// than the retained one-shot baseline — instead of merely recording it.
//
// The optional -max-metric name,unit,limit flag (repeatable) gates absolute
// per-benchmark metrics: it exits non-zero when benchmark `name` reports a
// `unit` value (e.g. allocs/op, B/op; ns/op works too) above `limit`. CI
// uses it as the allocation-regression bar on the DFK submission hot path.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// repeatFlag collects repeated comma-form assertions (-min-speedup, -max-metric).
type repeatFlag []string

func (f *repeatFlag) String() string     { return strings.Join(*f, ";") }
func (f *repeatFlag) Set(v string) error { *f = append(*f, v); return nil }

func main() {
	var asserts repeatFlag
	flag.Var(&asserts, "min-speedup",
		"base,new,factor: fail unless base ns/op >= factor * new ns/op (repeatable)")
	var maxes repeatFlag
	flag.Var(&maxes, "max-metric",
		"name,unit,limit: fail when benchmark name's unit metric exceeds limit (repeatable)")
	flag.Parse()

	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		// Strip the -GOMAXPROCS suffix so names are stable across runner
		// shapes (only a trailing "-<digits>", never digits in the name).
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := result{Name: name, Iterations: iters}
		// The remainder alternates value, unit.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				r.NsPerOp = v
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	byName := make(map[string]result, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	failed := false
	for _, a := range asserts {
		parts := strings.Split(a, ",")
		if len(parts) != 3 {
			fmt.Fprintf(os.Stderr, "benchjson: bad -min-speedup %q (want base,new,factor)\n", a)
			failed = true
			continue
		}
		factor, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad factor in %q: %v\n", a, err)
			failed = true
			continue
		}
		base, okB := byName[parts[0]]
		new_, okN := byName[parts[1]]
		if !okB || !okN || new_.NsPerOp <= 0 {
			fmt.Fprintf(os.Stderr, "benchjson: missing results for %q (base %v, new %v)\n", a, okB, okN)
			failed = true
			continue
		}
		speedup := base.NsPerOp / new_.NsPerOp
		if speedup < factor {
			fmt.Fprintf(os.Stderr, "benchjson: %s is only %.2fx faster than %s (bar: %.2fx)\n",
				parts[1], speedup, parts[0], factor)
			failed = true
			continue
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s is %.2fx faster than %s (bar: %.2fx) — ok\n",
			parts[1], speedup, parts[0], factor)
	}
	for _, a := range maxes {
		parts := strings.Split(a, ",")
		if len(parts) != 3 {
			fmt.Fprintf(os.Stderr, "benchjson: bad -max-metric %q (want name,unit,limit)\n", a)
			failed = true
			continue
		}
		limit, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad limit in %q: %v\n", a, err)
			failed = true
			continue
		}
		r, ok := byName[parts[0]]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: missing result %q for -max-metric\n", parts[0])
			failed = true
			continue
		}
		var v float64
		if parts[1] == "ns/op" {
			v = r.NsPerOp
		} else if m, ok := r.Metrics[parts[1]]; ok {
			v = m
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: %s reported no %q metric\n", parts[0], parts[1])
			failed = true
			continue
		}
		if v > limit {
			fmt.Fprintf(os.Stderr, "benchjson: %s %s = %g exceeds limit %g\n",
				parts[0], parts[1], v, limit)
			failed = true
			continue
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s %s = %g within limit %g — ok\n",
			parts[0], parts[1], v, limit)
	}
	if failed {
		os.Exit(1)
	}
}
