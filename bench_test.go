// Benchmarks regenerating the paper's tables and figures (one target per
// experiment; see DESIGN.md §3 for the index and EXPERIMENTS.md for
// paper-vs-measured numbers):
//
//	BenchmarkFig3Latency        — Fig. 3 single-task latency per executor
//	BenchmarkFig4Strong         — Fig. 4 (top) strong-scaling points (DES)
//	BenchmarkFig4Weak           — Fig. 4 (bottom) weak-scaling points (DES)
//	BenchmarkTable2Throughput   — Table 2 tasks/s per framework (DES)
//	BenchmarkTable2MaxWorkers   — Table 2 max-workers probe (DES)
//	BenchmarkFig6Elasticity     — Fig. 6 utilization/makespan, both arms
//	BenchmarkAblation*          — design-choice ablations from DESIGN.md §5
package parsl_test

import (
	"fmt"
	"testing"
	"time"

	"repro"

	"repro/internal/baselines"
	"repro/internal/executor"
	"repro/internal/executor/exex"
	"repro/internal/executor/htex"
	"repro/internal/executor/llex"
	"repro/internal/executor/threadpool"
	"repro/internal/provider"
	"repro/internal/scalesim"
	"repro/internal/serialize"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// benchRegistry builds a registry with the standard bench apps.
func benchRegistry(b *testing.B) *serialize.Registry {
	b.Helper()
	reg := serialize.NewRegistry()
	if err := workload.RegisterBenchApps(reg); err != nil {
		b.Fatal(err)
	}
	return reg
}

// latencyLoop measures sequential no-op round trips — the Fig. 3 metric.
func latencyLoop(b *testing.B, ex executor.Executor) {
	b.Helper()
	if err := ex.Start(); err != nil {
		b.Fatal(err)
	}
	defer ex.Shutdown()
	// Warm up until the first task completes (manager registration etc.).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := ex.Submit(serialize.TaskMsg{ID: -1, App: "noop"}).ResultTimeout(time.Second); err == nil {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("executor never became ready")
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Submit(serialize.TaskMsg{ID: int64(i), App: "noop"}).Result(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Latency reproduces Fig. 3: ns/op is the single-task latency.
func BenchmarkFig3Latency(b *testing.B) {
	b.Run("threadpool", func(b *testing.B) {
		latencyLoop(b, threadpool.New("tp", 1, benchRegistry(b)))
	})
	b.Run("llex", func(b *testing.B) {
		latencyLoop(b, llex.New(llex.Config{
			Label: "llex", Transport: simnet.Midway(), Registry: benchRegistry(b), Workers: 1,
		}))
	})
	b.Run("htex", func(b *testing.B) {
		latencyLoop(b, htex.New(htex.Config{
			Label: "htex", Transport: simnet.Midway(), Registry: benchRegistry(b),
			Provider:   provider.NewLocal(provider.Config{NodesPerBlock: 1}),
			InitBlocks: 1, Manager: htex.ManagerConfig{Workers: 1},
		}))
	})
	b.Run("exex", func(b *testing.B) {
		latencyLoop(b, exex.New(exex.Config{
			Label: "exex", Transport: simnet.Midway(), Registry: benchRegistry(b),
			Provider:   provider.NewLocal(provider.Config{NodesPerBlock: 1}),
			InitBlocks: 1, Pool: exex.PoolConfig{Ranks: 2},
		}))
	})
	b.Run("ipp", func(b *testing.B) {
		latencyLoop(b, baselines.NewIPP(1, benchRegistry(b)))
	})
	b.Run("dask", func(b *testing.B) {
		latencyLoop(b, baselines.NewDask(1, benchRegistry(b)))
	})
}

// BenchmarkFig4Strong reproduces representative Fig. 4 (top) points on the
// DES; the reported "paperSeconds" metric is the virtual-time makespan.
func BenchmarkFig4Strong(b *testing.B) {
	for _, p := range scalesim.All() {
		for _, workers := range []int{512, 8192} {
			if p.MaxWorkers > 0 && workers > p.MaxWorkers {
				continue
			}
			tasks := 50000
			if p.Name == "fireworks" {
				tasks = 5000
			}
			b.Run(fmt.Sprintf("%s/w%d", p.Name, workers), func(b *testing.B) {
				var last scalesim.Result
				for i := 0; i < b.N; i++ {
					last = scalesim.Run(p, tasks, 0, workers)
				}
				b.ReportMetric(last.Makespan.Seconds(), "paperSeconds")
				b.ReportMetric(last.Rate, "tasks/s")
			})
		}
	}
}

// BenchmarkFig4Weak reproduces representative Fig. 4 (bottom) points.
func BenchmarkFig4Weak(b *testing.B) {
	for _, p := range scalesim.All() {
		for _, workers := range []int{64, 1024} {
			if p.MaxWorkers > 0 && workers > p.MaxWorkers {
				continue
			}
			b.Run(fmt.Sprintf("%s/w%d", p.Name, workers), func(b *testing.B) {
				var last scalesim.Result
				for i := 0; i < b.N; i++ {
					last = scalesim.Run(p, 10*workers, time.Second, workers)
				}
				b.ReportMetric(last.Makespan.Seconds(), "paperSeconds")
			})
		}
	}
}

// BenchmarkTable2Throughput reproduces the Table 2 tasks/second column.
func BenchmarkTable2Throughput(b *testing.B) {
	for _, p := range scalesim.All() {
		b.Run(p.Name, func(b *testing.B) {
			var last scalesim.Result
			for i := 0; i < b.N; i++ {
				last = scalesim.Throughput(p, 256)
			}
			b.ReportMetric(last.Rate, "tasks/s")
		})
	}
}

// BenchmarkTable2MaxWorkers reproduces the Table 2 max-workers columns.
func BenchmarkTable2MaxWorkers(b *testing.B) {
	for _, p := range scalesim.All() {
		b.Run(p.Name, func(b *testing.B) {
			alloc := 2048
			if p.Name == "parsl-exex" {
				alloc = 8192
			}
			var last scalesim.ProbeResult
			for i := 0; i < b.N; i++ {
				last = scalesim.ProbeMaxWorkers(p, alloc)
			}
			b.ReportMetric(float64(last.MaxWorkers), "maxWorkers")
			b.ReportMetric(float64(last.MaxNodes), "maxNodes")
		})
	}
}

// BenchmarkFig6Elasticity reproduces the Fig. 6 experiment; metrics are in
// paper units (utilization %, makespan paper-seconds).
func BenchmarkFig6Elasticity(b *testing.B) {
	for _, elastic := range []bool{false, true} {
		name := "fixed"
		if elastic {
			name = "elastic"
		}
		b.Run(name, func(b *testing.B) {
			var last workload.ElasticityResult
			for i := 0; i < b.N; i++ {
				r, err := workload.RunElasticity(workload.ElasticityConfig{
					TimeScale: 4 * time.Millisecond, Elastic: elastic,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.Utilization*100, "utilization%")
			b.ReportMetric(last.MakespanSeconds, "paperSeconds")
		})
	}
}

// BenchmarkAblationHTEXBatching quantifies §4.3.1's batching/prefetch claim:
// manager batching + prefetch vs one-at-a-time dispatch, 512 no-ops on 4
// workers.
func BenchmarkAblationHTEXBatching(b *testing.B) {
	run := func(b *testing.B, batch, prefetch int) {
		reg := benchRegistry(b)
		ex := htex.New(htex.Config{
			Label: "htex", Transport: simnet.Midway(), Registry: reg,
			Provider:    provider.NewLocal(provider.Config{NodesPerBlock: 1}),
			InitBlocks:  1,
			Manager:     htex.ManagerConfig{Workers: 4, Prefetch: prefetch},
			Interchange: htex.InterchangeConfig{BatchSize: batch, Seed: 1},
		})
		if err := ex.Start(); err != nil {
			b.Fatal(err)
		}
		defer ex.Shutdown()
		for {
			if _, err := ex.Submit(serialize.TaskMsg{ID: -1, App: "noop"}).ResultTimeout(time.Second); err == nil {
				break
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			futs := make([]*parsl.Future, 512)
			for j := range futs {
				futs[j] = ex.Submit(serialize.TaskMsg{ID: int64(i*512 + j), App: "noop"})
			}
			for _, f := range futs {
				if _, err := f.Result(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("batched-prefetch", func(b *testing.B) { run(b, 16, 8) })
	b.Run("single-no-prefetch", func(b *testing.B) { run(b, 1, 0) })
}

// BenchmarkAblationLLEXvsHTEX isolates the stateless-relay latency trade
// (§4.3.3): same network, one worker, sequential tasks.
func BenchmarkAblationLLEXvsHTEX(b *testing.B) {
	b.Run("llex-stateless", func(b *testing.B) {
		latencyLoop(b, llex.New(llex.Config{
			Label: "llex", Transport: simnet.Midway(), Registry: benchRegistry(b), Workers: 1,
		}))
	})
	b.Run("htex-tracking", func(b *testing.B) {
		latencyLoop(b, htex.New(htex.Config{
			Label: "htex", Transport: simnet.Midway(), Registry: benchRegistry(b),
			Provider:   provider.NewLocal(provider.Config{NodesPerBlock: 1}),
			InitBlocks: 1, Manager: htex.ManagerConfig{Workers: 1},
		}))
	})
}

// BenchmarkAblationScheduling compares the paper's randomized manager
// selection with deterministic round-robin (§4.3.1 claims randomization for
// fairness): 512 tasks over 4 managers of unequal speed — the skew shows up
// in completion time.
func BenchmarkAblationScheduling(b *testing.B) {
	run := func(b *testing.B, sel htex.Selection) {
		reg := benchRegistry(b)
		ex := htex.New(htex.Config{
			Label: "htex", Transport: simnet.Midway(), Registry: reg,
			Provider:    provider.NewLocal(provider.Config{NodesPerBlock: 4}),
			InitBlocks:  1,
			Manager:     htex.ManagerConfig{Workers: 2, Prefetch: 2},
			Interchange: htex.InterchangeConfig{Seed: 1, Selection: sel},
		})
		if err := ex.Start(); err != nil {
			b.Fatal(err)
		}
		defer ex.Shutdown()
		for {
			if _, err := ex.Submit(serialize.TaskMsg{ID: -1, App: "noop"}).ResultTimeout(time.Second); err == nil {
				break
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			futs := make([]*parsl.Future, 512)
			for j := range futs {
				futs[j] = ex.Submit(serialize.TaskMsg{ID: int64(i*512 + j), App: "noop"})
			}
			for _, f := range futs {
				if _, err := f.Result(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("random", func(b *testing.B) { run(b, htex.SelectRandom) })
	b.Run("round-robin", func(b *testing.B) { run(b, htex.SelectRoundRobin) })
}

// BenchmarkAblationMemoization measures §4.6 memoization: repeated identical
// calls with and without the memo table.
func BenchmarkAblationMemoization(b *testing.B) {
	run := func(b *testing.B, memoize bool) {
		d, err := parsl.NewLocal(2)
		if err != nil {
			b.Fatal(err)
		}
		defer d.Shutdown()
		expensive, err := d.PythonApp("expensive", func(args []any, _ map[string]any) (any, error) {
			time.Sleep(2 * time.Millisecond)
			return args[0], nil
		}, parsl.WithMemoize(memoize))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := expensive.Call(42).Result(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("memoized", func(b *testing.B) { run(b, true) })
	b.Run("unmemoized", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationParallelism sweeps the elasticity strategy's parallelism
// knob (§4.4) on the DES-free strategy math (cheap, so it can run hot).
func BenchmarkAblationParallelism(b *testing.B) {
	for _, para := range []float64{0.25, 0.5, 1.0} {
		b.Run(fmt.Sprintf("p%.2f", para), func(b *testing.B) {
			r, err := workload.RunElasticity(workload.ElasticityConfig{
				TimeScale: 4 * time.Millisecond, Elastic: true, Parallelism: para,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 1; i < b.N; i++ { // first run reported; rest keep timer honest
				_, _ = workload.RunElasticity(workload.ElasticityConfig{
					TimeScale: 4 * time.Millisecond, Elastic: true, Parallelism: para,
				})
			}
			b.ReportMetric(r.Utilization*100, "utilization%")
			b.ReportMetric(r.MakespanSeconds, "paperSeconds")
		})
	}
}

// BenchmarkDFKSubmission measures raw DFK task-graph overhead (§4.1: "the
// execution time complexity of a task graph with n tasks and e edges is
// O(n+e)"): submissions per second through the full dependency machinery.
func BenchmarkDFKSubmission(b *testing.B) {
	d, err := parsl.NewLocal(4)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Shutdown()
	noop, err := d.PythonApp("bench-noop", func([]any, map[string]any) (any, error) { return nil, nil })
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	futs := make([]*parsl.Future, b.N)
	for i := 0; i < b.N; i++ {
		futs[i] = noop.Call(i)
	}
	for _, f := range futs {
		if _, err := f.Result(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDFKSubmissionParallel measures the submit hot path under
// contention: many goroutines calling App.Call at once, exercising the
// sharded task graph and the batched dispatch pipeline. Compare ns/op with
// BenchmarkDFKSubmission — the parallel path must not be slower than the
// serial one.
func BenchmarkDFKSubmissionParallel(b *testing.B) {
	d, err := parsl.NewLocal(4)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Shutdown()
	noop, err := d.PythonApp("bench-noop", func([]any, map[string]any) (any, error) { return nil, nil })
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var futs []*parsl.Future
		for pb.Next() {
			futs = append(futs, noop.Call(1))
		}
		for _, f := range futs {
			if _, err := f.Result(); err != nil {
				// b.Fatal is not allowed off the benchmark goroutine.
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkWALSubmission measures what the durable dataflow log costs on the
// submit hot path: the same workload as BenchmarkDFKSubmission, once with the
// WAL off (must be byte-identical to not having the subsystem at all) and once
// with it on (group commit amortizes the fsync; CI bounds the ratio).
func BenchmarkWALSubmission(b *testing.B) {
	run := func(b *testing.B, walOn bool) {
		reg := serialize.NewRegistry()
		cfg := parsl.Config{
			Registry:  reg,
			Executors: []executor.Executor{threadpool.New("tp", 4, reg)},
		}
		if walOn {
			cfg.WAL = true
			cfg.WALDir = b.TempDir()
		}
		d, err := parsl.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer d.Shutdown()
		noop, err := d.PythonApp("bench-noop", func([]any, map[string]any) (any, error) { return nil, nil })
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		futs := make([]*parsl.Future, b.N)
		for i := 0; i < b.N; i++ {
			futs[i] = noop.Call(i)
		}
		for _, f := range futs {
			if _, err := f.Result(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("wal-off", func(b *testing.B) { run(b, false) })
	b.Run("wal-on", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationDFKScheduler compares the DFK's executor-selection
// policies on an asymmetric deployment (one 8-worker pool, one 1-worker
// pool, 512 one-millisecond tasks per round): the paper's random policy
// sprays half the work at the small pool, round-robin likewise, while the
// capacity-aware policy routes by live load.
func BenchmarkAblationDFKScheduler(b *testing.B) {
	for _, policy := range []string{"random", "round-robin", "least-outstanding"} {
		b.Run(policy, func(b *testing.B) {
			d, err := parsl.NewLocalMulti(policy, 8, 1)
			if err != nil {
				b.Fatal(err)
			}
			defer d.Shutdown()
			work, err := d.PythonApp("bench-work", func([]any, map[string]any) (any, error) {
				time.Sleep(time.Millisecond)
				return nil, nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				futs := make([]*parsl.Future, 512)
				for j := range futs {
					futs[j] = work.Call(j)
				}
				for _, f := range futs {
					if _, err := f.Result(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
