package parsl_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro"
)

// The module is named "repro"; alias the root package to parsl for
// readability in tests and examples.
// (Go resolves the package name from the package clause: parsl.)

func TestQuickstartThreadPool(t *testing.T) {
	d, err := parslNewLocal(t, 4)
	if err != nil {
		t.Fatal(err)
	}
	hello, err := d.PythonApp("hello", func(args []any, _ map[string]any) (any, error) {
		return "Hello " + args[0].(string), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := hello.Call("World").Result()
	if err != nil || v != "Hello World" {
		t.Fatalf("result = %v, %v", v, err)
	}
}

func parslNewLocal(t *testing.T, n int) (*parsl.DFK, error) {
	t.Helper()
	d, err := parsl.NewLocal(n)
	if err == nil {
		t.Cleanup(func() { _ = d.Shutdown() })
	}
	return d, err
}

func TestQuickstartHTEX(t *testing.T) {
	d, err := parsl.NewLocalHTEX(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	double, err := d.PythonApp("double", func(args []any, _ map[string]any) (any, error) {
		return args[0].(int) * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var futs []*parsl.Future
	for i := 0; i < 20; i++ {
		futs = append(futs, double.Call(i))
	}
	for i, f := range futs {
		v, err := f.Result()
		if err != nil || v != i*2 {
			t.Fatalf("task %d: %v %v", i, v, err)
		}
	}
}

func TestQuickstartLLEX(t *testing.T) {
	d, err := parsl.NewLocalLLEX(2)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	ping, err := d.PythonApp("ping", func([]any, map[string]any) (any, error) { return "pong", nil })
	if err != nil {
		t.Fatal(err)
	}
	v, err := ping.Call().Result()
	if err != nil || v != "pong" {
		t.Fatalf("result = %v, %v", v, err)
	}
}

func TestQuickstartEXEX(t *testing.T) {
	d, err := parsl.NewLocalEXEX(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	sq, err := d.PythonApp("square", func(args []any, _ map[string]any) (any, error) {
		x := args[0].(int)
		return x * x, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := sq.Call(9).Result()
	if err != nil || v != 81 {
		t.Fatalf("result = %v, %v", v, err)
	}
}

func TestBashAppThroughFacade(t *testing.T) {
	d, err := parslNewLocal(t, 2)
	if err != nil {
		t.Fatal(err)
	}
	echo, err := d.BashApp("becho", func(args []any, _ map[string]any) (string, error) {
		return fmt.Sprintf("echo 'Hello %v'", args[0]), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := echo.Call("World").Result()
	if err != nil {
		t.Skipf("/bin/sh unavailable: %v", err)
	}
	res := v.(parsl.BashResult)
	if res.ExitCode != 0 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
}

func TestRecommendExecutorFig7(t *testing.T) {
	cases := []struct {
		nodes       int
		dur         time.Duration
		interactive bool
		want        string
	}{
		{5, time.Second, true, "llex"},         // interactive, short tasks, <=10 nodes
		{5, 0, true, "llex"},                   // duration unknown: interactivity decides
		{5, time.Second, false, "htex"},        // batch small
		{1000, time.Minute, false, "htex"},     // batch <=1000 nodes
		{8000, 2 * time.Minute, false, "exex"}, // >1000 nodes, minute-scale tasks
		{50, time.Millisecond, true, "htex"},   // interactive but too many nodes for llex
		// Fig. 7 duration thresholds: llex only pays off for short tasks,
		// exex only for tasks >= 1 min.
		{5, 5 * time.Minute, true, "htex"},      // minute-scale tasks gain nothing from llex
		{8000, time.Second, false, "htex"},      // >1000 nodes but sub-minute tasks: exex would thrash
		{8000, 59 * time.Second, false, "htex"}, // just below the exex threshold
		{8000, time.Minute, false, "exex"},      // exactly at the exex threshold
		{5, 59 * time.Second, true, "llex"},     // just below the llex cutoff
		{8000, 0, false, "htex"},                // duration unknown: stay on htex
	}
	for _, c := range cases {
		if got := parsl.RecommendExecutor(c.nodes, c.dur, c.interactive); got != c.want {
			t.Errorf("Recommend(%d, %v, %v) = %q, want %q", c.nodes, c.dur, c.interactive, got, c.want)
		}
	}
}

func TestCheckExecutorFitFig7(t *testing.T) {
	// HTEX rule: task-duration / nodes >= 0.01 — "on 10 nodes, tasks >= 0.1 s".
	if ok, _ := parsl.CheckExecutorFit("htex", 10, 100*time.Millisecond); !ok {
		t.Error("htex with 10 nodes / 0.1s tasks should fit")
	}
	if ok, warn := parsl.CheckExecutorFit("htex", 10, 10*time.Millisecond); ok || warn == "" {
		t.Error("htex with 10 nodes / 0.01s tasks should warn")
	}
	if ok, _ := parsl.CheckExecutorFit("llex", 5, time.Millisecond); !ok {
		t.Error("llex on 5 nodes should fit")
	}
	if ok, _ := parsl.CheckExecutorFit("llex", 100, time.Millisecond); ok {
		t.Error("llex on 100 nodes should warn")
	}
	if ok, _ := parsl.CheckExecutorFit("exex", 8000, 2*time.Minute); !ok {
		t.Error("exex with 2min tasks should fit")
	}
	if ok, _ := parsl.CheckExecutorFit("exex", 8000, time.Second); ok {
		t.Error("exex with 1s tasks should warn")
	}
	if ok, _ := parsl.CheckExecutorFit("warp", 1, time.Second); ok {
		t.Error("unknown executor accepted")
	}
}

func TestFileFacade(t *testing.T) {
	f := parsl.MustFile("http://example.org/data.csv")
	if !f.Remote() || f.Filename() != "data.csv" {
		t.Fatalf("file = %+v", f)
	}
	if _, err := parsl.NewFile("bogus://x/y"); err == nil {
		t.Fatal("bad scheme accepted")
	}
}

func TestVersionString(t *testing.T) {
	if !strings.Contains(parsl.Version, "HPDC") {
		t.Fatalf("version = %q", parsl.Version)
	}
}
