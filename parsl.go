// Package parsl is a Go reproduction of Parsl (Babuji et al., "Parsl:
// Pervasive Parallel Programming in Python", HPDC 2019): a parallel
// scripting library built around two constructs — Apps (functions that run
// asynchronously, possibly remotely) and Futures (single-update result
// handles) — executed by a DataFlowKernel over an extensible family of
// executors (thread pool, high-throughput, extreme-scale, low-latency) and
// resource providers (local, batch schedulers, clouds).
//
// Quick start:
//
//	d, _ := parsl.NewLocal(4)          // 4-worker thread-pool DFK
//	defer d.Shutdown()
//	hello, _ := d.PythonApp("hello", func(args []any, _ map[string]any) (any, error) {
//	    return "Hello " + args[0].(string), nil
//	})
//	ctx := context.Background()
//	fut := hello.Submit(ctx, []any{"World"})   // returns immediately
//	v, _ := fut.ResultCtx(ctx)                 // blocks for the result
//
// Submissions are context-aware: canceling ctx cancels the task (and fails
// its dependents with a DependencyError), and per-call options tune one
// invocation — parsl.WithPriority(10) jumps a backlogged dispatch lane,
// WithTimeout/WithDeadline bound the attempt, WithExecutor pins it, and
// WithRetries/WithMemoKey override the DFK-wide defaults. For compile-time
// types, wrap an app with the generic adapters:
//
//	greet := parsl.Typed1[string, string](hello)
//	msg, _ := greet(ctx, "World").Result(ctx)  // msg is a string
//
// App.Call remains as a minimal shim over Submit with a background context.
// See examples/ for dataflow composition, Bash apps, file staging, and
// elastic execution on the simulated cluster substrate.
package parsl

import (
	"fmt"
	"time"

	"repro/internal/app"
	"repro/internal/cache"
	"repro/internal/data"
	"repro/internal/dfk"
	"repro/internal/executor"
	"repro/internal/executor/exex"
	"repro/internal/executor/htex"
	"repro/internal/executor/llex"
	"repro/internal/executor/threadpool"
	"repro/internal/future"
	"repro/internal/health"
	"repro/internal/monitor"
	"repro/internal/provider"
	"repro/internal/sched"
	"repro/internal/serialize"
	"repro/internal/simnet"
)

// Re-exported core types, so programs only import this package.
type (
	// DFK is the DataFlowKernel (§4.1).
	DFK = dfk.DFK
	// Config configures a DFK (§3.5: separation of code and configuration).
	Config = dfk.Config
	// App is an invocable Parsl app (§3.1.1).
	App = dfk.App
	// Future is the single-update result handle (§3.1.2).
	Future = future.Future
	// File is a location-independent file reference (§4.5).
	File = data.File
	// BashResult is what Bash apps resolve to.
	BashResult = app.BashResult
	// Registry maps app names to functions for worker-side resolution.
	Registry = serialize.Registry
	// Fn is the executable app signature.
	Fn = serialize.Fn
	// Scheduler picks an executor for each ready task. Set Config.Scheduler
	// (or Config.SchedulerPolicy by name) to replace the paper's random
	// selection with round-robin or capacity-aware routing.
	Scheduler = sched.Scheduler
	// SchedulerLoad is one executor's live load signal set.
	SchedulerLoad = sched.Load
	// CallOption customizes one App.Submit/SubmitKw invocation.
	CallOption = dfk.CallOption
	// DependencyError is set on a task's future when a dependency failed
	// (including when the dependency's submission context was canceled).
	DependencyError = dfk.DependencyError
	// HealthOptions enables the self-healing retry plane via Config.Health:
	// typed failure classification with per-class retry policies, backoff
	// with deterministic jitter, per-executor circuit breakers, and
	// poison-task quarantine. Nil disables the plane (the default); the zero
	// value enables it with defaults.
	HealthOptions = health.Options
	// HealthPolicy is one failure class's retry policy (charge the budget or
	// not, backoff curve, failover eligibility).
	HealthPolicy = health.Policy
	// BreakerConfig tunes the per-executor circuit breakers.
	BreakerConfig = health.BreakerConfig
	// QuarantineError is the permanent failure a poison task concludes with:
	// its attempts killed QuarantineAfter distinct managers; Kills carries
	// the history. Detect with errors.As.
	QuarantineError = health.QuarantineError
)

// Re-exported constructors and options.
var (
	// New builds a DFK from a Config.
	New = dfk.New
	// NewFile parses a file URL (file://, http://, ftp://, globus://).
	NewFile = data.NewFile
	// MustFile is NewFile or panic.
	MustFile = data.MustFile
	// NewRegistry creates an app registry.
	NewRegistry = serialize.NewRegistry
	// WithMemoize, WithExecutors, WithVersion, WithBashOptions customize
	// app registration.
	WithMemoize     = dfk.WithMemoize
	WithExecutors   = dfk.WithExecutors
	WithVersion     = dfk.WithVersion
	WithBashOptions = dfk.WithBashOptions
	// Per-call options for App.Submit/SubmitKw: dispatch priority, executor
	// pinning, attempt deadlines/timeouts, retry budget, and explicit memo
	// keys — each overriding the registration-time or DFK-wide default for
	// one invocation.
	WithPriority = dfk.WithPriority
	WithExecutor = dfk.WithExecutor
	WithDeadline = dfk.WithDeadline
	WithTimeout  = dfk.WithTimeout
	WithRetries  = dfk.WithRetries
	WithMemoKey  = dfk.WithMemoKey
	// WithTenant attributes one submission to a fair-queuing tenant with a
	// DRR weight: every queue the task waits in serves tenants in proportion
	// to their weights, and Config.MaxTasksPerTenant/TenantQuotas bound each
	// tenant's live tasks (blocking or shedding per Config.OverloadPolicy).
	WithTenant = dfk.WithTenant
	// NewMonitorStore creates the in-memory monitoring sink.
	NewMonitorStore = monitor.NewStore
	// MapReduce and Chain are the §7 "constructs for delivering
	// parallelism" extensions.
	MapReduce = dfk.MapReduce
	Chain     = dfk.Chain
	// NewBarrier is the §7 "additional synchronization primitives"
	// extension: a reusable completion barrier over futures.
	NewBarrier = future.NewBarrier
	// WaitAll blocks on a set of futures, returning the first error;
	// WaitAllCtx stops early when the context is done.
	WaitAll    = future.Wait
	WaitAllCtx = future.WaitCtx
	// AsCompleted yields futures in completion order; AsCompletedCtx stops
	// the iteration early when the context is done.
	AsCompleted    = future.AsCompleted
	AsCompletedCtx = future.AsCompletedCtx
	// Scheduler constructors: NewRandomScheduler is the paper-faithful
	// default (seedable), NewRoundRobinScheduler cycles deterministically,
	// and NewLeastOutstandingScheduler routes by live outstanding-per-worker
	// load. SchedulerByName resolves the Config.SchedulerPolicy strings.
	NewRandomScheduler           = sched.NewRandom
	NewRoundRobinScheduler       = sched.NewRoundRobin
	NewLeastOutstandingScheduler = sched.NewLeastOutstanding
	// NewLocalityScheduler routes each task to an executor already holding
	// its input digest (advertised by HTEX managers via heartbeats), falling
	// back to least-outstanding on a cold digest.
	NewLocalityScheduler = sched.NewLocality
	SchedulerByName      = sched.ByName
	// NewResultCache creates the shared content-addressed result cache for
	// Config.SharedCache: results keyed by the memo digest triple, shared
	// across DFK instances and seedable from a checkpointed memo table.
	NewResultCache = cache.New
)

// Barrier is the reusable multi-future barrier (future work §7).
type Barrier = future.Barrier

// Cancellation sentinels: a task canceled through its submission context
// fails with an error wrapping ErrSubmissionCanceled (and the context's own
// error, so errors.Is(err, context.Canceled) holds as well); a future
// settled directly by Cancel carries ErrFutureCanceled.
var (
	ErrSubmissionCanceled = dfk.ErrCanceled
	ErrFutureCanceled     = future.ErrCanceled
)

// ErrTaskTimeout is wrapped into task failures caused by Config.TaskTimeout
// or the per-call WithTimeout/WithDeadline options, so callers can
// distinguish "too slow" from "broken" with errors.Is.
var ErrTaskTimeout = dfk.ErrTimeout

// ErrOverloaded is set on the returned future when a submission exceeds its
// tenant's admission quota under the shed policy (Config.OverloadPolicy =
// OverloadShed). Detect it with errors.Is and retry later or elsewhere.
var ErrOverloaded = dfk.ErrOverloaded

// Overload policies for Config.OverloadPolicy: block the submitter until
// quota frees (backpressure) or shed with ErrOverloaded (load shedding).
const (
	OverloadBlock = dfk.OverloadBlock
	OverloadShed  = dfk.OverloadShed
)

// NewLocal builds the simplest useful deployment: a DFK over an in-process
// thread-pool executor with n workers — the laptop configuration.
func NewLocal(n int) (*DFK, error) {
	reg := serialize.NewRegistry()
	tp := threadpool.New("local", n, reg)
	return dfk.New(dfk.Config{Registry: reg, Executors: []executor.Executor{tp}})
}

// NewLocalMulti builds a DFK over several thread pools — one per entry in
// workersPerPool — selected by the named scheduling policy ("random",
// "round-robin", "least-outstanding"). The smallest deployment where the
// scheduler choice is observable.
func NewLocalMulti(policy string, workersPerPool ...int) (*DFK, error) {
	if len(workersPerPool) == 0 {
		return nil, fmt.Errorf("parsl: NewLocalMulti needs at least one pool")
	}
	reg := serialize.NewRegistry()
	exs := make([]executor.Executor, len(workersPerPool))
	for i, n := range workersPerPool {
		exs[i] = threadpool.New(fmt.Sprintf("local-%d", i), n, reg)
	}
	return dfk.New(dfk.Config{Registry: reg, Executors: exs, SchedulerPolicy: policy})
}

// TenantConfig bundles the multi-tenancy and backpressure knobs for the
// local facades; the zero value means "single-tenant, unbounded" — exactly
// the pre-tenant behavior.
type TenantConfig struct {
	// MaxTasksPerTenant caps live tasks per tenant (0 = unbounded).
	MaxTasksPerTenant int
	// TenantQuotas overrides the cap per tenant id.
	TenantQuotas map[string]int
	// OverloadPolicy is OverloadBlock (default) or OverloadShed.
	OverloadPolicy string
	// QueueDepth bounds each pool's input queue (0 = the 4096 default). A
	// shallow depth keeps backlog in the DFK's tenant-fair lanes instead of
	// the executor's FIFO, making fair shares visible in task latency.
	QueueDepth int
}

// NewLocalMultiTenant is NewLocalMulti with the multi-tenancy knobs exposed:
// several thread pools under the named scheduling policy, per-tenant
// admission quotas, and bounded executor input queues. Submissions opt in
// per call with parsl.WithTenant.
func NewLocalMultiTenant(policy string, tc TenantConfig, workersPerPool ...int) (*DFK, error) {
	if len(workersPerPool) == 0 {
		return nil, fmt.Errorf("parsl: NewLocalMultiTenant needs at least one pool")
	}
	reg := serialize.NewRegistry()
	depth := tc.QueueDepth
	if depth <= 0 {
		depth = 4096
	}
	exs := make([]executor.Executor, len(workersPerPool))
	for i, n := range workersPerPool {
		exs[i] = threadpool.NewWithDepth(fmt.Sprintf("local-%d", i), n, depth, reg)
	}
	return dfk.New(dfk.Config{
		Registry: reg, Executors: exs, SchedulerPolicy: policy,
		MaxTasksPerTenant: tc.MaxTasksPerTenant,
		TenantQuotas:      tc.TenantQuotas,
		OverloadPolicy:    tc.OverloadPolicy,
	})
}

// NewLocalHTEX builds a DFK over a full HTEX deployment (interchange,
// managers, workers) running on an in-memory network with a local provider —
// the configuration the quickstart example and the latency benchmarks use.
func NewLocalHTEX(nodes, workersPerNode int) (*DFK, error) {
	return NewLocalHTEXOpts(HTEXOptions{Nodes: nodes, WorkersPerNode: workersPerNode})
}

// HTEXOptions parameterizes NewLocalHTEXOpts. The zero value for any field
// keeps that knob's default; heartbeat knobs that cannot work together
// (threshold at or below the check period, or a manager pinging slower than
// the interchange's loss threshold) are rejected at DFK construction.
type HTEXOptions struct {
	// Nodes is managers per block (default 1).
	Nodes int
	// WorkersPerNode is worker goroutines per manager (default 1); prefetch
	// matches it.
	WorkersPerNode int
	// HeartbeatPeriod is how often the interchange checks manager liveness
	// (default 200ms).
	HeartbeatPeriod time.Duration
	// HeartbeatThreshold is manager silence after which the interchange
	// declares it lost and reports its tasks LOST (default 5× the period).
	HeartbeatThreshold time.Duration
	// ManagerHeartbeatPeriod is how often each manager pings the interchange
	// (default 200ms). Must stay below HeartbeatThreshold.
	ManagerHeartbeatPeriod time.Duration
	// Shards is how many interchange shards form the executor's control
	// plane (default 1 — the paper's single broker). With N > 1, managers
	// and tasks are placed across N interchanges by consistent hash
	// (tenant-affine) and one shard's death requeues only its own
	// outstanding tasks while the others keep draining.
	Shards int
	// Locality lets each interchange shard prefer dispatching a task to a
	// manager already advertising the task's input digest (data-aware
	// dispatch). Off by default — dispatch is byte-identical to the
	// locality-blind path.
	Locality bool
}

// NewLocalHTEXOpts is NewLocalHTEX with the deployment knobs exposed — in
// particular the interchange heartbeat threshold and manager heartbeat
// period, which the two-argument facade cannot reach.
func NewLocalHTEXOpts(o HTEXOptions) (*DFK, error) {
	nodes := o.Nodes
	if nodes <= 0 {
		nodes = 1
	}
	workers := o.WorkersPerNode
	if workers <= 0 {
		workers = 1
	}
	reg := serialize.NewRegistry()
	ex := htex.New(htex.Config{
		Label:      "htex",
		Transport:  simnet.NewNetwork(0),
		Registry:   reg,
		Provider:   provider.NewLocal(provider.Config{NodesPerBlock: nodes}),
		InitBlocks: 1,
		Manager: htex.ManagerConfig{
			Workers: workers, Prefetch: workers,
			HeartbeatPeriod: o.ManagerHeartbeatPeriod,
		},
		Interchange: htex.InterchangeConfig{
			HeartbeatPeriod:    o.HeartbeatPeriod,
			HeartbeatThreshold: o.HeartbeatThreshold,
			Locality:           o.Locality,
		},
		Shards: o.Shards,
	})
	return dfk.New(dfk.Config{Registry: reg, Executors: []executor.Executor{ex}})
}

// NewLocalLLEX builds a DFK over a Low Latency Executor with n directly
// connected workers.
func NewLocalLLEX(n int) (*DFK, error) {
	reg := serialize.NewRegistry()
	ex := llex.New(llex.Config{Label: "llex", Registry: reg, Workers: n})
	return dfk.New(dfk.Config{Registry: reg, Executors: []executor.Executor{ex}})
}

// NewLocalEXEX builds a DFK over an Extreme Scale Executor with `pools` MPI
// worker pools of `ranks` ranks each.
func NewLocalEXEX(pools, ranks int) (*DFK, error) {
	reg := serialize.NewRegistry()
	ex := exex.New(exex.Config{
		Label:      "exex",
		Registry:   reg,
		Provider:   provider.NewLocal(provider.Config{NodesPerBlock: pools}),
		InitBlocks: 1,
		Pool:       exex.PoolConfig{Ranks: ranks},
	})
	return dfk.New(dfk.Config{Registry: reg, Executors: []executor.Executor{ex}})
}

// RecommendExecutor encodes the Fig. 7 guidelines for selecting a Parsl
// executor from node count, task duration, and latency sensitivity:
//
//	LLEX for short interactive computations on ≤10 nodes.
//	HTEX for batch computations on ≤1000 nodes
//	     (for good performance, taskDur/nodes ≥ 0.01 s).
//	EXEX for batch computations on >1000 nodes,
//	     but only for task durations ≥ 1 min.
//
// The duration thresholds are part of the recommendation, not just the fit
// check: an "interactive" workload of minute-long tasks gains nothing from
// LLEX's low-latency path, and EXEX's MPI fan-out costs more than it returns
// below minute-scale tasks, so both fall back to HTEX. taskDur zero means
// "unknown" and leaves only the node/interactivity axes.
func RecommendExecutor(nodes int, taskDur time.Duration, interactive bool) string {
	shortTask := taskDur == 0 || taskDur < time.Minute
	if interactive && nodes <= 10 && shortTask {
		return "llex"
	}
	if nodes > 1000 && taskDur >= time.Minute {
		return "exex"
	}
	return "htex"
}

// CheckExecutorFit reports whether the chosen executor meets Fig. 7's
// performance guidance, returning a human-readable warning when it does not.
func CheckExecutorFit(label string, nodes int, taskDur time.Duration) (bool, string) {
	switch label {
	case "llex":
		if nodes > 10 {
			return false, fmt.Sprintf("llex targets <=10 nodes, got %d", nodes)
		}
	case "htex":
		if nodes > 1000 {
			return false, fmt.Sprintf("htex targets <=1000 nodes, got %d", nodes)
		}
		if nodes > 0 && taskDur.Seconds()/float64(nodes) < 0.01 {
			return false, fmt.Sprintf(
				"htex wants task-duration/nodes >= 0.01 (e.g., on 10 nodes, tasks >= 0.1s); got %.4f",
				taskDur.Seconds()/float64(nodes))
		}
	case "exex":
		if taskDur < time.Minute {
			return false, fmt.Sprintf("exex wants task durations >= 1 min, got %v", taskDur)
		}
	default:
		return false, fmt.Sprintf("unknown executor %q", label)
	}
	return true, ""
}

// Version identifies this reproduction.
const Version = "parsl-go 0.9 (HPDC'19 reproduction)"
