package parsl_test

import (
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/executor/htex"
)

// TestHTEXHeartbeatKnobsPlumbed: the heartbeat knobs on HTEXOptions reach the
// running interchange and manager — they are not decorative. The two-argument
// NewLocalHTEX facade could never set them; NewLocalHTEXOpts must.
func TestHTEXHeartbeatKnobsPlumbed(t *testing.T) {
	d, err := parsl.NewLocalHTEXOpts(parsl.HTEXOptions{
		Nodes:                  1,
		WorkersPerNode:         2,
		HeartbeatPeriod:        40 * time.Millisecond,
		HeartbeatThreshold:     400 * time.Millisecond,
		ManagerHeartbeatPeriod: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Shutdown() }()
	ex, ok := d.Executor("htex")
	if !ok {
		t.Fatal("no htex executor")
	}
	hx, ok := ex.(*htex.Executor)
	if !ok {
		t.Fatalf("executor is %T, not *htex.Executor", ex)
	}
	cfg := hx.Interchange().Config()
	if cfg.HeartbeatPeriod != 40*time.Millisecond {
		t.Fatalf("interchange HeartbeatPeriod = %v, want 40ms", cfg.HeartbeatPeriod)
	}
	if cfg.HeartbeatThreshold != 400*time.Millisecond {
		t.Fatalf("interchange HeartbeatThreshold = %v, want 400ms", cfg.HeartbeatThreshold)
	}
	// The stack must actually run with these settings.
	app, err := d.PythonApp("hb", func(args []any, _ map[string]any) (any, error) {
		return args[0].(int) * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := app.Call(21).Result()
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("v = %v", v)
	}
}

// TestHTEXHeartbeatValidation: incoherent heartbeat combinations fail at
// construction with a diagnostic, not at 3am with silent task loss.
func TestHTEXHeartbeatValidation(t *testing.T) {
	cases := []struct {
		name string
		opts parsl.HTEXOptions
		want string
	}{
		{
			"threshold-below-period",
			parsl.HTEXOptions{HeartbeatPeriod: 100 * time.Millisecond, HeartbeatThreshold: 50 * time.Millisecond},
			"must exceed",
		},
		{
			"manager-pings-too-slowly",
			parsl.HTEXOptions{HeartbeatThreshold: 200 * time.Millisecond, ManagerHeartbeatPeriod: 300 * time.Millisecond},
			"must be below",
		},
		{
			"negative-threshold",
			parsl.HTEXOptions{HeartbeatThreshold: -time.Second},
			"negative",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := parsl.NewLocalHTEXOpts(tc.opts)
			if err == nil {
				_ = d.Shutdown()
				t.Fatalf("config %+v accepted", tc.opts)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}
